//! Chrome `trace_event` sink.
//!
//! Emits the JSON object format (`{"traceEvents":[...]}`) understood by
//! `chrome://tracing` and Perfetto. Timestamps are **simulated cycles**,
//! never wall-clock time, so two identical runs emit byte-identical
//! files. Track layout:
//!
//! - pid 0 — the machine. tid 0 carries kernel spans with nested
//!   kernel-boundary drain spans; tid 1 carries SAC reconfiguration
//!   spans (drain/flush pauses) and decision instants.
//! - pid `1 + c` — chip `c`. Counter tracks sampled once per epoch
//!   (DRAM bytes, ring-injected bytes, queue depth, LLC hit rate).

/// Machine-track tid for kernel + boundary spans.
pub const TID_KERNELS: u64 = 1;
/// Machine-track tid for SAC reconfiguration spans and decisions.
pub const TID_SAC: u64 = 2;

#[derive(Debug, Clone)]
enum Payload {
    /// `ph:"M"` metadata naming a process or thread.
    Meta { name: &'static str, value: String },
    /// `ph:"X"` complete span.
    Span {
        name: String,
        dur: u64,
        args: Vec<(String, String)>,
    },
    /// `ph:"i"` thread-scoped instant.
    Instant {
        name: String,
        args: Vec<(String, String)>,
    },
    /// `ph:"C"` counter sample.
    Counter {
        name: &'static str,
        series: Vec<(&'static str, String)>,
    },
}

#[derive(Debug, Clone)]
struct Event {
    pid: u64,
    tid: u64,
    ts: u64,
    payload: Payload,
}

/// Collects trace events during a run and serializes them to Chrome
/// `trace_event` JSON at the end.
#[derive(Debug, Default)]
pub struct TraceSink {
    events: Vec<Event>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// Name a process track (`ph:"M"`, `process_name`).
    pub fn name_process(&mut self, pid: u64, name: &str) {
        self.events.push(Event {
            pid,
            tid: 0,
            ts: 0,
            payload: Payload::Meta {
                name: "process_name",
                value: name.to_string(),
            },
        });
    }

    /// Name a thread track (`ph:"M"`, `thread_name`).
    pub fn name_thread(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(Event {
            pid,
            tid,
            ts: 0,
            payload: Payload::Meta {
                name: "thread_name",
                value: name.to_string(),
            },
        });
    }

    /// Add a complete span (`ph:"X"`) covering `[start, end]` cycles.
    pub fn span(
        &mut self,
        pid: u64,
        tid: u64,
        name: impl Into<String>,
        start: u64,
        end: u64,
        args: Vec<(String, String)>,
    ) {
        self.events.push(Event {
            pid,
            tid,
            ts: start,
            payload: Payload::Span {
                name: name.into(),
                dur: end.saturating_sub(start),
                args,
            },
        });
    }

    /// Add a thread-scoped instant (`ph:"i"`).
    pub fn instant(
        &mut self,
        pid: u64,
        tid: u64,
        name: impl Into<String>,
        ts: u64,
        args: Vec<(String, String)>,
    ) {
        self.events.push(Event {
            pid,
            tid,
            ts,
            payload: Payload::Instant {
                name: name.into(),
                args,
            },
        });
    }

    /// Add a counter sample (`ph:"C"`); each `(series, value)` pair becomes
    /// one stacked series. Values are pre-rendered JSON numbers.
    pub fn counter(
        &mut self,
        pid: u64,
        ts: u64,
        name: &'static str,
        series: Vec<(&'static str, String)>,
    ) {
        self.events.push(Event {
            pid,
            tid: 0,
            ts,
            payload: Payload::Counter { name, series },
        });
    }

    /// Number of events collected.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been collected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialize the collected events into a checkpoint payload.
    pub fn save(&self, e: &mut mcgpu_types::Enc) {
        e.put_seq_len(self.events.len());
        for ev in &self.events {
            e.put_u64(ev.pid);
            e.put_u64(ev.tid);
            e.put_u64(ev.ts);
            match &ev.payload {
                Payload::Meta { name, value } => {
                    e.put_u8(0);
                    e.put_str(name);
                    e.put_str(value);
                }
                Payload::Span { name, dur, args } => {
                    e.put_u8(1);
                    e.put_str(name);
                    e.put_u64(*dur);
                    save_args(e, args);
                }
                Payload::Instant { name, args } => {
                    e.put_u8(2);
                    e.put_str(name);
                    save_args(e, args);
                }
                Payload::Counter { name, series } => {
                    e.put_u8(3);
                    e.put_str(name);
                    e.put_seq_len(series.len());
                    for (k, v) in series {
                        e.put_str(k);
                        e.put_str(v);
                    }
                }
            }
        }
    }

    /// Deserialize a sink saved by [`TraceSink::save`]. Static label fields
    /// are interned against the engine's known label vocabulary.
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input.
    pub fn load(d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<Self> {
        let n = d.get_seq_len()?;
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            let pid = d.get_u64()?;
            let tid = d.get_u64()?;
            let ts = d.get_u64()?;
            let payload = match d.get_u8()? {
                0 => Payload::Meta {
                    name: super::intern_label(d.get_str()?),
                    value: d.get_str()?.to_string(),
                },
                1 => Payload::Span {
                    name: d.get_str()?.to_string(),
                    dur: d.get_u64()?,
                    args: load_args(d)?,
                },
                2 => Payload::Instant {
                    name: d.get_str()?.to_string(),
                    args: load_args(d)?,
                },
                3 => {
                    let name = super::intern_label(d.get_str()?);
                    let m = d.get_seq_len()?;
                    let mut series = Vec::with_capacity(m);
                    for _ in 0..m {
                        let k = super::intern_label(d.get_str()?);
                        let v = d.get_str()?.to_string();
                        series.push((k, v));
                    }
                    Payload::Counter { name, series }
                }
                t => {
                    return Err(mcgpu_types::CkptError::Decode(format!(
                        "unknown trace event tag {t}"
                    )))
                }
            };
            events.push(Event {
                pid,
                tid,
                ts,
                payload,
            });
        }
        Ok(TraceSink { events })
    }

    /// Serialize to Chrome `trace_event` JSON (one event per line).
    ///
    /// Events are sorted by `(pid, tid, ts, metadata-first, longest span
    /// first)`: metadata rows lead their track, and at equal timestamps an
    /// enclosing span precedes the spans it contains, which is what the
    /// trace viewers' nesting algorithm expects.
    pub fn to_json(&self) -> String {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| {
            let e = &self.events[i];
            let (is_meta, dur) = match &e.payload {
                Payload::Meta { .. } => (0u8, 0u64),
                Payload::Span { dur, .. } => (1, u64::MAX - dur),
                _ => (1, u64::MAX),
            };
            (e.pid, e.tid, e.ts, is_meta, dur)
        });
        let mut out = String::from("{\"traceEvents\":[\n");
        for (n, &i) in order.iter().enumerate() {
            let e = &self.events[i];
            if n > 0 {
                out.push_str(",\n");
            }
            match &e.payload {
                Payload::Meta { name, value } => out.push_str(&format!(
                    "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"{}\",\"args\":{{\"name\":\"{}\"}}}}",
                    e.pid,
                    e.tid,
                    name,
                    escape(value)
                )),
                Payload::Span { name, dur, args } => out.push_str(&format!(
                    "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\",\"args\":{{{}}}}}",
                    e.pid,
                    e.tid,
                    e.ts,
                    dur,
                    escape(name),
                    render_args(args)
                )),
                Payload::Instant { name, args } => out.push_str(&format!(
                    "{{\"ph\":\"i\",\"pid\":{},\"tid\":{},\"ts\":{},\"s\":\"t\",\"name\":\"{}\",\"args\":{{{}}}}}",
                    e.pid,
                    e.tid,
                    e.ts,
                    escape(name),
                    render_args(args)
                )),
                Payload::Counter { name, series } => {
                    let body = series
                        .iter()
                        .map(|(k, v)| format!("\"{}\":{}", k, v))
                        .collect::<Vec<_>>()
                        .join(",");
                    out.push_str(&format!(
                        "{{\"ph\":\"C\",\"pid\":{},\"tid\":{},\"ts\":{},\"name\":\"{}\",\"args\":{{{}}}}}",
                        e.pid, e.tid, e.ts, name, body
                    ))
                }
            }
        }
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
        out
    }
}

fn save_args(e: &mut mcgpu_types::Enc, args: &[(String, String)]) {
    e.put_seq_len(args.len());
    for (k, v) in args {
        e.put_str(k);
        e.put_str(v);
    }
}

fn load_args(d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<Vec<(String, String)>> {
    let n = d.get_seq_len()?;
    let mut args = Vec::with_capacity(n);
    for _ in 0..n {
        let k = d.get_str()?.to_string();
        let v = d.get_str()?.to_string();
        args.push((k, v));
    }
    Ok(args)
}

fn render_args(args: &[(String, String)]) -> String {
    args.iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape(k), escape(v)))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_sorted_and_deterministic() {
        let build = || {
            let mut t = TraceSink::new();
            t.span(0, TID_KERNELS, "kernel 1", 500, 900, vec![]);
            t.name_process(0, "machine");
            t.span(0, TID_KERNELS, "kernel 0", 0, 400, vec![]);
            t.span(0, TID_KERNELS, "boundary", 300, 400, vec![]);
            t.to_json()
        };
        let a = build();
        assert_eq!(a, build(), "identical event streams serialize identically");
        let meta = a.find("process_name").unwrap();
        let k0 = a.find("kernel 0").unwrap();
        let k1 = a.find("kernel 1").unwrap();
        let b = a.find("boundary").unwrap();
        assert!(
            meta < k0 && k0 < b && b < k1,
            "metadata first, then spans by ts"
        );
    }

    #[test]
    fn equal_ts_spans_sort_longest_first() {
        let mut t = TraceSink::new();
        t.span(0, 0, "inner", 100, 150, vec![]);
        t.span(0, 0, "outer", 100, 900, vec![]);
        let json = t.to_json();
        assert!(json.find("outer").unwrap() < json.find("inner").unwrap());
    }

    #[test]
    fn strings_are_escaped() {
        let mut t = TraceSink::new();
        t.instant(
            0,
            0,
            "a\"b\\c",
            5,
            vec![("k\n".to_string(), "v".to_string())],
        );
        let json = t.to_json();
        assert!(json.contains("a\\\"b\\\\c"));
        assert!(json.contains("k\\n"));
    }
}
