//! The Dynamic LLC organization of Milic et al. (MICRO 2017).

use super::{BoundaryAction, EpochActions, EpochCtx, LlcOrgPolicy, Pause, RouteMode};
use crate::dynamic::DynamicCtl;
use crate::packet::FillAction;
use mcgpu_types::{CoherenceKind, ConfigError, LlcOrgKind, PolicyCtx};

/// Dynamic-split policy: the structure of [`StaticHalfPolicy`]
/// (tiered routing, replicate-on-return, remote-pool flush at boundaries)
/// with the local/remote way split re-balanced every epoch by the
/// [`DynamicCtl`] bandwidth heuristic — policy-internal state the engine
/// never sees directly.
///
/// [`StaticHalfPolicy`]: super::StaticHalfPolicy
#[derive(Debug)]
pub struct DynamicPolicy {
    ctl: DynamicCtl,
}

impl DynamicPolicy {
    /// Create the dynamic-split policy, re-evaluating every `epoch_cycles`.
    ///
    /// # Errors
    /// [`ConfigError`] when the LLC has fewer than 2 ways (both pools need
    /// at least one way).
    pub fn new(ctx: &PolicyCtx, epoch_cycles: u64) -> Result<Self, ConfigError> {
        if ctx.llc_assoc < 2 {
            return Err(ConfigError::new(
                "way-partitioned organizations need an LLC with at least 2 ways",
            ));
        }
        Ok(DynamicPolicy {
            ctl: DynamicCtl::new(ctx.llc_assoc, epoch_cycles),
        })
    }
}

impl LlcOrgPolicy for DynamicPolicy {
    fn kind(&self) -> LlcOrgKind {
        LlcOrgKind::Dynamic
    }

    fn route_mode(&self) -> RouteMode {
        RouteMode::Tiered
    }

    fn remote_fill_action(&self) -> FillAction {
        FillAction::FillLocalSlice
    }

    fn way_split(&self) -> Option<usize> {
        Some(self.ctl.local_ways())
    }

    fn boundary_action(&self, coherence: CoherenceKind) -> BoundaryAction {
        match coherence {
            CoherenceKind::Software => BoundaryAction::FlushRemoteDirty,
            CoherenceKind::Hardware => BoundaryAction::DropRemoteReplicas,
        }
    }

    fn begin_kernel(&mut self, now: u64, ring_bytes: u64, mem_bytes: u64) {
        self.ctl.new_kernel(now, ring_bytes, mem_bytes);
    }

    fn on_cycle(&mut self, ctx: &EpochCtx<'_>, _pause: Pause) -> EpochActions {
        EpochActions {
            set_local_ways: self
                .ctl
                .maybe_adjust(ctx.now, ctx.ring_bytes, ctx.mem_bytes),
            ..EpochActions::default()
        }
    }

    fn next_policy_event(&self, _now: u64) -> u64 {
        // `maybe_adjust` is a pure no-op until the controller's next epoch
        // boundary; the skip clamps there so the adjustment still happens
        // at exactly the stepped loop's cycle.
        self.ctl.next_epoch()
    }

    fn save_state(&self, e: &mut mcgpu_types::Enc) {
        self.ctl.save(e);
    }

    fn load_state(&mut self, d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<()> {
        self.ctl = DynamicCtl::load(d)?;
        Ok(())
    }
}
