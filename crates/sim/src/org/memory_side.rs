//! The memory-side baseline organization (Fig. 3a).

use super::{BoundaryAction, LlcOrgPolicy, RouteMode};
use crate::packet::FillAction;
use mcgpu_types::{CoherenceKind, LlcOrgKind};

/// Baseline policy: every slice caches its local partition's data on behalf
/// of all chips, so requests always travel to the home chip and responses
/// never replicate.
#[derive(Debug, Default)]
pub struct MemorySidePolicy;

impl MemorySidePolicy {
    /// Create the baseline policy (stateless).
    pub fn new() -> Self {
        MemorySidePolicy
    }
}

impl LlcOrgPolicy for MemorySidePolicy {
    fn kind(&self) -> LlcOrgKind {
        LlcOrgKind::MemorySide
    }

    fn route_mode(&self) -> RouteMode {
        RouteMode::MemorySide
    }

    fn remote_fill_action(&self) -> FillAction {
        FillAction::None
    }

    fn boundary_action(&self, coherence: CoherenceKind) -> BoundaryAction {
        match coherence {
            // Memory-side contents are home data: always valid next kernel.
            CoherenceKind::Software => BoundaryAction::None,
            CoherenceKind::Hardware => BoundaryAction::DropRemoteReplicas,
        }
    }

    fn next_policy_event(&self, _now: u64) -> u64 {
        // Stateless: `on_cycle` is the default no-op, so a quiescent
        // machine never needs a policy wake-up.
        u64::MAX
    }
}
