//! The LLC-organization policy layer.
//!
//! SAC's core observation is that one machine can behave as five different
//! LLC organizations (§3). This module makes that behavioral axis a
//! first-class, independently testable layer: every decision that varies by
//! organization — request route mode, remote-response fill action,
//! way-partition split, kernel-boundary coherence action, and the per-cycle
//! controller hooks — lives behind [`LlcOrgPolicy`], one implementation per
//! organization, one file per implementation.
//!
//! The engine consults the policy at its decision points and applies the
//! returned actions; it never matches on [`LlcOrgKind`] itself. Adding a
//! sixth organization means adding one policy file here and one
//! [`OrgDescriptor`] row to [`REGISTRY`] — no engine or bench-binary edits
//! (see `DESIGN.md`, "How to add a sixth LLC organization").

#![deny(missing_docs)]

mod dynamic;
mod memory_side;
mod sac;
mod sm_side;
mod static_half;

pub use dynamic::DynamicPolicy;
pub use memory_side::MemorySidePolicy;
pub use sac::SacPolicy;
pub use sm_side::SmSidePolicy;
pub use static_half::StaticHalfPolicy;

use crate::packet::FillAction;
use ::sac::{SacConfig, SacController};
use mcgpu_types::{CoherenceKind, ConfigError, LlcOrgKind, MachineConfig};

/// How requests are routed right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteMode {
    /// All requests go to the home chip's slices.
    MemorySide,
    /// All requests go to the local chip's slices.
    SmSide,
    /// Local-homed requests go to the home slice; remote-homed requests
    /// probe the local slice's remote pool first (static/dynamic).
    Tiered,
}

impl RouteMode {
    /// Short label used in the decision-table test and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            RouteMode::MemorySide => "memory-side",
            RouteMode::SmSide => "sm-side",
            RouteMode::Tiered => "tiered",
        }
    }
}

/// What the LLC must do to its contents at a kernel boundary (§2.1, §4,
/// §5.6). The engine sequences the resulting writeback/invalidation
/// traffic; the policy only chooses the action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryAction {
    /// Keep all contents (memory-side caches only home data, which the next
    /// kernel may reuse).
    None,
    /// Write back and invalidate every dirty line (software coherence over
    /// SM-side contents).
    FlushAllDirty,
    /// Write back and invalidate dirty *remote-pool* lines only (software
    /// coherence over the tiered organizations' remote ways).
    FlushRemoteDirty,
    /// Drop remote replicas without bulk writeback traffic — the hardware
    /// directory kept them coherent during the kernel (§5.6).
    DropRemoteReplicas,
}

impl BoundaryAction {
    /// Short label used in the decision-table test.
    pub fn label(self) -> &'static str {
        match self {
            BoundaryAction::None => "none",
            BoundaryAction::FlushAllDirty => "flush-all-dirty",
            BoundaryAction::FlushRemoteDirty => "flush-remote-dirty",
            BoundaryAction::DropRemoteReplicas => "drop-remote-replicas",
        }
    }
}

/// Why the engine is not issuing new instructions. Only the SAC policy
/// requests the drain/flush states (its §3.6 reconfiguration sequence);
/// every other organization runs permanently in [`Pause::Running`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pause {
    /// Normal execution.
    Running,
    /// SAC waits for in-flight requests to drain (§3.6 step 1).
    SacDrain,
    /// SAC writes back dirty LLC lines before switching (§3.6 step 2).
    SacFlush,
}

impl Pause {
    /// Diagnostic label (used by deadlock snapshots).
    pub fn label(self) -> &'static str {
        match self {
            Pause::Running => "running",
            Pause::SacDrain => "sac-drain",
            Pause::SacFlush => "sac-flush",
        }
    }
}

/// Read-only machine signals a policy may consult from its per-cycle hook
/// ([`LlcOrgPolicy::on_cycle`]).
///
/// The quiescence and work-done signals are behind closures so the engine
/// only pays for computing them when a policy actually gates on them (the
/// SAC drain sequence); the cheap cumulative counters are passed by value.
pub struct EpochCtx<'a> {
    /// Current cycle.
    pub now: u64,
    /// Cumulative bytes sent on the inter-chip ring.
    pub ring_bytes: u64,
    /// Cumulative bytes served by the DRAM partitions.
    pub mem_bytes: u64,
    /// Whether the machine is fully quiescent (no in-flight requests, empty
    /// ring, all chip queues drained). Lazy: evaluated only by policies that
    /// gate on drain completion.
    pub quiescent: &'a dyn Fn() -> bool,
    /// Completed work count (reads + writes machine-wide). Lazy: evaluated
    /// only by policies that monitor forward progress.
    pub work_done: &'a dyn Fn() -> u64,
}

impl std::fmt::Debug for EpochCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochCtx")
            .field("now", &self.now)
            .field("ring_bytes", &self.ring_bytes)
            .field("mem_bytes", &self.mem_bytes)
            .finish_non_exhaustive()
    }
}

/// What the engine must apply after a policy's per-cycle hook. Actions are
/// applied in field order: dirty writeback, pause transition, overhead
/// accounting, repartition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochActions {
    /// Write back every dirty LLC line while keeping contents resident
    /// (SAC's memory-side → SM-side flush step).
    pub writeback_dirty: bool,
    /// Transition the engine's pause state.
    pub set_pause: Option<Pause>,
    /// Count this cycle as reconfiguration overhead.
    pub overhead_cycle: bool,
    /// Repartition every LLC slice to this many local ways (the Dynamic
    /// organization's epoch adjustment).
    pub set_local_ways: Option<usize>,
}

/// One LLC organization's behavioral policy: every decision the engine's
/// former `match self.org` arms encoded, plus the organization's internal
/// controller state (the Dynamic way-split controller, the SAC
/// reconfiguration state machine).
///
/// Implementations must be cheap to query: `route_mode` and
/// `remote_fill_action` sit on the per-request hot path.
pub trait LlcOrgPolicy: std::fmt::Debug + Send {
    /// Which organization this policy implements.
    fn kind(&self) -> LlcOrgKind;

    /// How requests are routed right now (may change over a run for
    /// reconfigurable organizations).
    fn route_mode(&self) -> RouteMode;

    /// What a response returning to the requesting chip from a remote
    /// origin must do on arrival (replicate into the local slice or not).
    fn remote_fill_action(&self) -> FillAction;

    /// Ways reserved for local data, for way-partitioned organizations
    /// (`None` = unpartitioned).
    fn way_split(&self) -> Option<usize> {
        None
    }

    /// The LLC action required at a kernel boundary under `coherence`.
    fn boundary_action(&self, coherence: CoherenceKind) -> BoundaryAction;

    /// A kernel is about to start. `ring_bytes`/`mem_bytes` are the
    /// cumulative machine counters policies use as epoch baselines.
    fn begin_kernel(&mut self, _now: u64, _ring_bytes: u64, _mem_bytes: u64) {}

    /// The kernel's instruction streams have completed; the boundary
    /// sequence is starting (SAC reverts to memory-side here, §3.6).
    fn end_kernel(&mut self) {}

    /// The kernel-boundary drain finished at cycle `now`: all writebacks
    /// and invalidations have left the machine.
    fn boundary_drained(&mut self, _now: u64) {}

    /// Per-cycle controller hook, called once per tick after the datapath
    /// phases. The default is a no-op for organizations without runtime
    /// controllers.
    fn on_cycle(&mut self, _ctx: &EpochCtx<'_>, _pause: Pause) -> EpochActions {
        EpochActions::default()
    }

    /// The next absolute cycle (strictly after `now`) at which this
    /// policy's [`on_cycle`](LlcOrgPolicy::on_cycle) hook can mutate state
    /// or return a non-default action, assuming the machine stays fully
    /// quiescent until then. `u64::MAX` means "never while quiescent". The
    /// engine's idle-cycle skip clamps its clock jump to this cycle, so a
    /// policy may be conservative (report an earlier cycle) but must never
    /// report a later one — the conservative default of `now + 1` disables
    /// skipping entirely for policies that do not override it.
    fn next_policy_event(&self, now: u64) -> u64 {
        now + 1
    }

    /// Diagnostic label of the policy's internal controller state, for
    /// organizations that have one (`None` otherwise). The observability
    /// timeline records it each epoch.
    fn controller_state_label(&self) -> Option<&'static str> {
        None
    }

    /// Serialize the policy's internal controller state into a checkpoint
    /// payload. Stateless organizations (memory-side, SM-side, static)
    /// write nothing; the Dynamic and SAC controllers override this.
    fn save_state(&self, _e: &mut mcgpu_types::Enc) {}

    /// Restore controller state saved by
    /// [`save_state`](LlcOrgPolicy::save_state) into this policy.
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input.
    fn load_state(&mut self, _d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<()> {
        Ok(())
    }

    /// The SAC controller, when this policy is the SAC organization — the
    /// engine's profiling taps and statistics reporting read it directly.
    fn sac(&self) -> Option<&SacController> {
        None
    }

    /// Mutable access to the SAC controller (profiling observation, fault
    /// driven architectural-bandwidth refresh).
    fn sac_mut(&mut self) -> Option<&mut SacController> {
        None
    }
}

/// One organization's registry entry: how the CLI names it and what it is.
#[derive(Debug, Clone, Copy)]
pub struct OrgDescriptor {
    /// The organization.
    pub kind: LlcOrgKind,
    /// Canonical CLI token (`--org <token>`).
    pub token: &'static str,
    /// One-line description for `--list-orgs`.
    pub summary: &'static str,
}

/// All registered organizations, in the paper's presentation order. Bench
/// binaries parse `--org` against this table, so a new organization needs
/// only a policy file and a row here.
pub const REGISTRY: [OrgDescriptor; 5] = [
    OrgDescriptor {
        kind: LlcOrgKind::MemorySide,
        token: "mem",
        summary: "baseline: slices cache the local partition's data for all chips",
    },
    OrgDescriptor {
        kind: LlcOrgKind::SmSide,
        token: "sm",
        summary: "two-NoC SM-side: slices cache whatever the local SMs access",
    },
    OrgDescriptor {
        kind: LlcOrgKind::StaticHalf,
        token: "static",
        summary: "L1.5 static split: half the ways local, half remote",
    },
    OrgDescriptor {
        kind: LlcOrgKind::Dynamic,
        token: "dynamic",
        summary: "dynamic way split adapting to local-memory vs inter-chip pressure",
    },
    OrgDescriptor {
        kind: LlcOrgKind::Sac,
        token: "sac",
        summary: "SAC: per-kernel memory-side/SM-side choice driven by the EAB model",
    },
];

/// The registry row for `kind`.
pub fn descriptor(kind: LlcOrgKind) -> &'static OrgDescriptor {
    REGISTRY
        .iter()
        .find(|d| d.kind == kind)
        .expect("every organization is registered")
}

/// Resolve a CLI token (or an organization's display label) to its
/// organization. Tokens are the canonical spelling; labels are accepted so
/// journal files and `--org SAC` keep working.
pub fn org_by_token(token: &str) -> Option<LlcOrgKind> {
    REGISTRY
        .iter()
        .find(|d| d.token == token || d.kind.label() == token)
        .map(|d| d.kind)
}

/// Every registered CLI token, in registry order — the vocabulary quoted by
/// unknown-organization errors.
pub fn tokens() -> Vec<&'static str> {
    REGISTRY.iter().map(|d| d.token).collect()
}

/// Build the policy implementing `kind` on the machine described by `cfg`.
///
/// # Errors
/// [`ConfigError`] when the organization cannot run on this machine (the
/// way-partitioned organizations need at least 2 LLC ways).
pub fn build_policy(
    kind: LlcOrgKind,
    cfg: &MachineConfig,
    sac_cfg: SacConfig,
    dynamic_epoch: u64,
) -> Result<Box<dyn LlcOrgPolicy>, ConfigError> {
    let ctx = cfg.policy_ctx();
    Ok(match kind {
        LlcOrgKind::MemorySide => Box::new(MemorySidePolicy::new()),
        LlcOrgKind::SmSide => Box::new(SmSidePolicy::new()),
        LlcOrgKind::StaticHalf => Box::new(StaticHalfPolicy::new(&ctx)?),
        LlcOrgKind::Dynamic => Box::new(DynamicPolicy::new(&ctx, dynamic_epoch)?),
        LlcOrgKind::Sac => Box::new(SacPolicy::new(cfg, sac_cfg)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_organization_once() {
        assert_eq!(REGISTRY.len(), LlcOrgKind::ALL.len());
        for kind in LlcOrgKind::ALL {
            assert_eq!(descriptor(kind).kind, kind);
        }
    }

    #[test]
    fn tokens_and_labels_both_resolve() {
        assert_eq!(org_by_token("mem"), Some(LlcOrgKind::MemorySide));
        assert_eq!(org_by_token("memory-side"), Some(LlcOrgKind::MemorySide));
        assert_eq!(org_by_token("sac"), Some(LlcOrgKind::Sac));
        assert_eq!(org_by_token("SAC"), Some(LlcOrgKind::Sac));
        assert_eq!(org_by_token("bogus"), None);
    }

    #[test]
    fn way_partitioned_policies_reject_single_way_llcs() {
        let mut cfg = MachineConfig::experiment_baseline();
        cfg.llc_assoc = 1;
        let sac_cfg = SacConfig::for_machine(&cfg);
        for kind in [LlcOrgKind::StaticHalf, LlcOrgKind::Dynamic] {
            assert!(build_policy(kind, &cfg, sac_cfg, 8192).is_err());
        }
        assert!(build_policy(LlcOrgKind::MemorySide, &cfg, sac_cfg, 8192).is_ok());
    }
}
