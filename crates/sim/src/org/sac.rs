//! The SAC organization (§3): per-kernel reconfiguration between
//! memory-side and SM-side driven by the EAB model.

use super::{BoundaryAction, EpochActions, EpochCtx, LlcOrgPolicy, Pause, RouteMode};
use crate::packet::FillAction;
use ::sac::eab::{ArchBandwidth, EabModel};
use ::sac::{LlcMode, SacConfig, SacController};
use mcgpu_types::{CoherenceKind, LlcOrgKind, MachineConfig};

/// SAC policy: wraps the [`SacController`] state machine (profile →
/// decide(θ) → drain/flush/reconfigure → revert, §3.2/§3.6) as
/// policy-internal state. Routing and fill decisions follow the
/// controller's current [`LlcMode`]; the drain and flush pauses of a
/// mid-kernel switch are requested through [`EpochActions`].
#[derive(Debug)]
pub struct SacPolicy {
    ctl: SacController,
}

impl SacPolicy {
    /// Create the SAC policy for `cfg`, with the controller parameters in
    /// `sac_cfg` (profiling window, θ).
    pub fn new(cfg: &MachineConfig, sac_cfg: SacConfig) -> Self {
        let ctx = cfg.policy_ctx();
        SacPolicy {
            ctl: SacController::new(
                sac_cfg,
                EabModel::new(ArchBandwidth::from_config(cfg)),
                ctx.chips,
                ctx.total_slices,
                ctx.llc_sets_per_chip,
                ctx.sectored,
            ),
        }
    }
}

impl LlcOrgPolicy for SacPolicy {
    fn kind(&self) -> LlcOrgKind {
        LlcOrgKind::Sac
    }

    fn route_mode(&self) -> RouteMode {
        match self.ctl.mode() {
            LlcMode::MemorySide => RouteMode::MemorySide,
            LlcMode::SmSide => RouteMode::SmSide,
        }
    }

    fn remote_fill_action(&self) -> FillAction {
        // Replicate only in SM-side mode (remote responses can only exist
        // in SM-side mode for SAC when they come from remote memory).
        match self.ctl.mode() {
            LlcMode::SmSide => FillAction::FillLocalSlice,
            LlcMode::MemorySide => FillAction::None,
        }
    }

    fn boundary_action(&self, coherence: CoherenceKind) -> BoundaryAction {
        match coherence {
            // §3.6: SM-side contents flush like the SM-side organization's;
            // in memory-side mode there is nothing to write back.
            CoherenceKind::Software => match self.ctl.mode() {
                LlcMode::SmSide => BoundaryAction::FlushAllDirty,
                LlcMode::MemorySide => BoundaryAction::None,
            },
            CoherenceKind::Hardware => BoundaryAction::DropRemoteReplicas,
        }
    }

    fn begin_kernel(&mut self, now: u64, _ring_bytes: u64, _mem_bytes: u64) {
        self.ctl.begin_kernel(now);
    }

    fn end_kernel(&mut self) {
        // Revert to memory-side; the engine's boundary drain runs next
        // either way, so the "needs drain" return is not consulted.
        self.ctl.end_kernel();
    }

    fn boundary_drained(&mut self, now: u64) {
        self.ctl.drain_complete(now);
    }

    fn on_cycle(&mut self, ctx: &EpochCtx<'_>, pause: Pause) -> EpochActions {
        let mut actions = EpochActions::default();
        match pause {
            Pause::Running => {
                if let Some(record) = self.ctl.tick(ctx.now) {
                    if record.mode == LlcMode::SmSide {
                        actions.set_pause = Some(Pause::SacDrain);
                    }
                }
                // Graceful degradation: feed the divergence monitor the
                // machine's completed-work count; it requests a drain when
                // a running SM-side decision stops holding up.
                if self.ctl.observe_progress(ctx.now, (ctx.work_done)()) {
                    actions.set_pause = Some(Pause::SacDrain);
                }
            }
            Pause::SacDrain => {
                if (ctx.quiescent)() {
                    if self.ctl.drain_complete(ctx.now) {
                        // §3.6: write back and invalidate *dirty* lines;
                        // clean home-slice contents remain valid under
                        // SM-side routing (same slice hash).
                        actions.writeback_dirty = true;
                        actions.set_pause = Some(Pause::SacFlush);
                    } else {
                        actions.set_pause = Some(Pause::Running);
                    }
                }
                actions.overhead_cycle = true;
            }
            Pause::SacFlush => {
                if (ctx.quiescent)() {
                    self.ctl.flush_complete();
                    actions.set_pause = Some(Pause::Running);
                }
                actions.overhead_cycle = true;
            }
        }
        actions
    }

    fn next_policy_event(&self, now: u64) -> u64 {
        self.ctl.next_event(now)
    }

    fn save_state(&self, e: &mut mcgpu_types::Enc) {
        self.ctl.save(e);
    }

    fn load_state(&mut self, d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<()> {
        self.ctl = SacController::load(d)?;
        Ok(())
    }

    fn controller_state_label(&self) -> Option<&'static str> {
        Some(self.ctl.state_label())
    }

    fn sac(&self) -> Option<&SacController> {
        Some(&self.ctl)
    }

    fn sac_mut(&mut self) -> Option<&mut SacController> {
        Some(&mut self.ctl)
    }
}
