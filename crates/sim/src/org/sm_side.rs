//! The two-NoC SM-side organization (Fig. 3b, Fig. 6).

use super::{BoundaryAction, LlcOrgPolicy, RouteMode};
use crate::packet::FillAction;
use mcgpu_types::{CoherenceKind, LlcOrgKind};

/// SM-side policy: each chip's slices cache whatever its own SMs access, so
/// requests stay local, remote misses bypass to the home memory, and remote
/// responses replicate into the local slice on the way back.
#[derive(Debug, Default)]
pub struct SmSidePolicy;

impl SmSidePolicy {
    /// Create the SM-side policy (stateless).
    pub fn new() -> Self {
        SmSidePolicy
    }
}

impl LlcOrgPolicy for SmSidePolicy {
    fn kind(&self) -> LlcOrgKind {
        LlcOrgKind::SmSide
    }

    fn route_mode(&self) -> RouteMode {
        RouteMode::SmSide
    }

    fn remote_fill_action(&self) -> FillAction {
        FillAction::FillLocalSlice
    }

    fn boundary_action(&self, coherence: CoherenceKind) -> BoundaryAction {
        match coherence {
            // Replicated (possibly stale-able) contents must be written back
            // and invalidated when software manages coherence (§2.1).
            CoherenceKind::Software => BoundaryAction::FlushAllDirty,
            CoherenceKind::Hardware => BoundaryAction::DropRemoteReplicas,
        }
    }

    fn next_policy_event(&self, _now: u64) -> u64 {
        // Stateless: `on_cycle` is the default no-op, so a quiescent
        // machine never needs a policy wake-up.
        u64::MAX
    }
}
