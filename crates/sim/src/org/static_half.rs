//! The Static "L1.5" organization of Arunkumar et al.

use super::{BoundaryAction, LlcOrgPolicy, RouteMode};
use crate::packet::FillAction;
use mcgpu_types::{CoherenceKind, ConfigError, LlcOrgKind, PolicyCtx};

/// Static-split policy: half the LLC ways cache local (home) data
/// memory-side, half cache remote data SM-side. The split is fixed for the
/// whole run; remote-pool misses travel on to the home slice (tiered
/// routing).
#[derive(Debug)]
pub struct StaticHalfPolicy {
    local_ways: usize,
}

impl StaticHalfPolicy {
    /// Create the static-split policy for the machine in `ctx`.
    ///
    /// # Errors
    /// [`ConfigError`] when the LLC has fewer than 2 ways (both pools need
    /// at least one way).
    pub fn new(ctx: &PolicyCtx) -> Result<Self, ConfigError> {
        if ctx.llc_assoc < 2 {
            return Err(ConfigError::new(
                "way-partitioned organizations need an LLC with at least 2 ways",
            ));
        }
        Ok(StaticHalfPolicy {
            local_ways: ctx.llc_assoc / 2,
        })
    }
}

impl LlcOrgPolicy for StaticHalfPolicy {
    fn kind(&self) -> LlcOrgKind {
        LlcOrgKind::StaticHalf
    }

    fn route_mode(&self) -> RouteMode {
        RouteMode::Tiered
    }

    fn remote_fill_action(&self) -> FillAction {
        FillAction::FillLocalSlice
    }

    fn way_split(&self) -> Option<usize> {
        Some(self.local_ways)
    }

    fn boundary_action(&self, coherence: CoherenceKind) -> BoundaryAction {
        match coherence {
            // Only the remote pool replicates; the local pool is home data.
            CoherenceKind::Software => BoundaryAction::FlushRemoteDirty,
            CoherenceKind::Hardware => BoundaryAction::DropRemoteReplicas,
        }
    }

    fn next_policy_event(&self, _now: u64) -> u64 {
        // The split is fixed for the whole run and `on_cycle` is the
        // default no-op: no policy wake-ups needed.
        u64::MAX
    }
}
