//! Internal packet envelopes routed through the NoCs and the ring.

use mcgpu_types::{ChipId, LineAddr, Request, Response};

/// Which leg of its journey a request is on (Fig. 6's miss-routing paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqStage {
    /// Heading to a slice on the requesting chip (SM-side lookup, or the
    /// local half of the static/dynamic organizations for remote data).
    ToLocalSlice,
    /// Heading to a slice on the page's home chip (memory-side lookup —
    /// path 5/6 in Fig. 6 — or the static organizations' second-level
    /// lookup).
    ToHomeSlice,
    /// SM-side remote miss: bypass the home chip's slices and go straight
    /// to its memory partition (path 4 in Fig. 6).
    ToHomeMemBypass,
}

/// A request plus its routing stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqEnvelope {
    /// The memory request.
    pub req: Request,
    /// Current routing stage.
    pub stage: ReqStage,
}

impl ReqEnvelope {
    /// Bytes on the wire.
    pub fn wire_bytes(&self) -> u64 {
        self.req.wire_bytes()
    }
}

/// What a response must do when it arrives back on the requesting chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillAction {
    /// Nothing to fill (the data was found on this chip, or the
    /// organization does not replicate).
    None,
    /// Fill the requesting chip's slice for this line (SM-side replication,
    /// or the static/dynamic remote pool).
    FillLocalSlice,
}

/// A response plus its fill obligation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RspEnvelope {
    /// The response.
    pub rsp: Response,
    /// Fill to perform on arrival at the requesting chip.
    pub fill: FillAction,
}

impl RspEnvelope {
    /// Bytes on the wire.
    pub fn wire_bytes(&self, line_size: u64) -> u64 {
        self.rsp.wire_bytes(line_size)
    }
}

/// Anything the inter-chip ring can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingPayload {
    /// A request on its way to a remote chip.
    Req(ReqEnvelope),
    /// A response on its way back.
    Rsp(RspEnvelope),
    /// A dirty-line writeback towards the line's home memory partition.
    Writeback {
        /// The dirty line.
        line: LineAddr,
        /// Its home chip.
        home: ChipId,
    },
    /// A hardware-coherence invalidation for `line` addressed to `target`.
    Inval {
        /// The line to invalidate.
        line: LineAddr,
        /// The chip whose LLC must drop its copy.
        target: ChipId,
    },
}

impl RingPayload {
    /// Bytes on the wire.
    pub fn wire_bytes(&self, line_size: u64) -> u64 {
        match self {
            RingPayload::Req(e) => e.wire_bytes(),
            RingPayload::Rsp(e) => e.wire_bytes(line_size),
            RingPayload::Writeback { .. } => mcgpu_types::packet::RSP_HEADER_BYTES + line_size,
            RingPayload::Inval { .. } => mcgpu_types::packet::RSP_HEADER_BYTES,
        }
    }
}

// ---------------------------------------------------------------------
// Checkpoint codecs (`mcgpu-ckpt-v1`).
// ---------------------------------------------------------------------

use mcgpu_types::{CkptError, CkptResult, Dec, Enc};

impl ReqEnvelope {
    /// Serialize into a checkpoint payload.
    pub fn save(&self, e: &mut Enc) {
        e.put_request(&self.req);
        e.put_u8(match self.stage {
            ReqStage::ToLocalSlice => 0,
            ReqStage::ToHomeSlice => 1,
            ReqStage::ToHomeMemBypass => 2,
        });
    }

    /// Deserialize an envelope saved by [`ReqEnvelope::save`].
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input.
    pub fn load(d: &mut Dec<'_>) -> CkptResult<Self> {
        let req = d.get_request()?;
        let stage = match d.get_u8()? {
            0 => ReqStage::ToLocalSlice,
            1 => ReqStage::ToHomeSlice,
            2 => ReqStage::ToHomeMemBypass,
            t => return Err(CkptError::Decode(format!("unknown request stage {t}"))),
        };
        Ok(ReqEnvelope { req, stage })
    }
}

impl RspEnvelope {
    /// Serialize into a checkpoint payload.
    pub fn save(&self, e: &mut Enc) {
        e.put_response(&self.rsp);
        e.put_u8(match self.fill {
            FillAction::None => 0,
            FillAction::FillLocalSlice => 1,
        });
    }

    /// Deserialize an envelope saved by [`RspEnvelope::save`].
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input.
    pub fn load(d: &mut Dec<'_>) -> CkptResult<Self> {
        let rsp = d.get_response()?;
        let fill = match d.get_u8()? {
            0 => FillAction::None,
            1 => FillAction::FillLocalSlice,
            t => return Err(CkptError::Decode(format!("unknown fill action {t}"))),
        };
        Ok(RspEnvelope { rsp, fill })
    }
}

impl RingPayload {
    /// Serialize into a checkpoint payload.
    pub fn save(&self, e: &mut Enc) {
        match self {
            RingPayload::Req(env) => {
                e.put_u8(0);
                env.save(e);
            }
            RingPayload::Rsp(env) => {
                e.put_u8(1);
                env.save(e);
            }
            RingPayload::Writeback { line, home } => {
                e.put_u8(2);
                e.put_u64(line.0);
                e.put_u8(home.0);
            }
            RingPayload::Inval { line, target } => {
                e.put_u8(3);
                e.put_u64(line.0);
                e.put_u8(target.0);
            }
        }
    }

    /// Deserialize a payload saved by [`RingPayload::save`].
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input.
    pub fn load(d: &mut Dec<'_>) -> CkptResult<Self> {
        Ok(match d.get_u8()? {
            0 => RingPayload::Req(ReqEnvelope::load(d)?),
            1 => RingPayload::Rsp(RspEnvelope::load(d)?),
            2 => RingPayload::Writeback {
                line: LineAddr(d.get_u64()?),
                home: ChipId(d.get_u8()?),
            },
            3 => RingPayload::Inval {
                line: LineAddr(d.get_u64()?),
                target: ChipId(d.get_u8()?),
            },
            t => return Err(CkptError::Decode(format!("unknown ring payload tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcgpu_types::{Address, ClusterId, MemAccess, RequestId, ResponseOrigin};

    #[test]
    fn ring_payload_sizes() {
        let req = ReqEnvelope {
            req: Request {
                id: RequestId(1),
                origin: ClusterId::new(ChipId(0), 0),
                access: MemAccess::read(Address::new(0)),
                home: ChipId(1),
            },
            stage: ReqStage::ToHomeSlice,
        };
        assert_eq!(RingPayload::Req(req).wire_bytes(128), 16);
        let rsp = RspEnvelope {
            rsp: Response {
                id: RequestId(1),
                dest: ClusterId::new(ChipId(0), 0),
                access: MemAccess::read(Address::new(0)),
                origin: ResponseOrigin::RemoteMem,
            },
            fill: FillAction::FillLocalSlice,
        };
        assert_eq!(RingPayload::Rsp(rsp).wire_bytes(128), 144);
        assert_eq!(
            RingPayload::Writeback {
                line: LineAddr(0),
                home: ChipId(0)
            }
            .wire_bytes(128),
            144
        );
        assert_eq!(
            RingPayload::Inval {
                line: LineAddr(0),
                target: ChipId(0)
            }
            .wire_bytes(128),
            16
        );
    }
}
