//! Internal packet envelopes routed through the NoCs and the ring.

use mcgpu_types::{ChipId, LineAddr, Request, Response};

/// Which leg of its journey a request is on (Fig. 6's miss-routing paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqStage {
    /// Heading to a slice on the requesting chip (SM-side lookup, or the
    /// local half of the static/dynamic organizations for remote data).
    ToLocalSlice,
    /// Heading to a slice on the page's home chip (memory-side lookup —
    /// path 5/6 in Fig. 6 — or the static organizations' second-level
    /// lookup).
    ToHomeSlice,
    /// SM-side remote miss: bypass the home chip's slices and go straight
    /// to its memory partition (path 4 in Fig. 6).
    ToHomeMemBypass,
}

/// A request plus its routing stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqEnvelope {
    /// The memory request.
    pub req: Request,
    /// Current routing stage.
    pub stage: ReqStage,
}

impl ReqEnvelope {
    /// Bytes on the wire.
    pub fn wire_bytes(&self) -> u64 {
        self.req.wire_bytes()
    }
}

/// What a response must do when it arrives back on the requesting chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillAction {
    /// Nothing to fill (the data was found on this chip, or the
    /// organization does not replicate).
    None,
    /// Fill the requesting chip's slice for this line (SM-side replication,
    /// or the static/dynamic remote pool).
    FillLocalSlice,
}

/// A response plus its fill obligation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RspEnvelope {
    /// The response.
    pub rsp: Response,
    /// Fill to perform on arrival at the requesting chip.
    pub fill: FillAction,
}

impl RspEnvelope {
    /// Bytes on the wire.
    pub fn wire_bytes(&self, line_size: u64) -> u64 {
        self.rsp.wire_bytes(line_size)
    }
}

/// Anything the inter-chip ring can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingPayload {
    /// A request on its way to a remote chip.
    Req(ReqEnvelope),
    /// A response on its way back.
    Rsp(RspEnvelope),
    /// A dirty-line writeback towards the line's home memory partition.
    Writeback {
        /// The dirty line.
        line: LineAddr,
        /// Its home chip.
        home: ChipId,
    },
    /// A hardware-coherence invalidation for `line` addressed to `target`.
    Inval {
        /// The line to invalidate.
        line: LineAddr,
        /// The chip whose LLC must drop its copy.
        target: ChipId,
    },
}

impl RingPayload {
    /// Bytes on the wire.
    pub fn wire_bytes(&self, line_size: u64) -> u64 {
        match self {
            RingPayload::Req(e) => e.wire_bytes(),
            RingPayload::Rsp(e) => e.wire_bytes(line_size),
            RingPayload::Writeback { .. } => mcgpu_types::packet::RSP_HEADER_BYTES + line_size,
            RingPayload::Inval { .. } => mcgpu_types::packet::RSP_HEADER_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcgpu_types::{Address, ClusterId, MemAccess, RequestId, ResponseOrigin};

    #[test]
    fn ring_payload_sizes() {
        let req = ReqEnvelope {
            req: Request {
                id: RequestId(1),
                origin: ClusterId::new(ChipId(0), 0),
                access: MemAccess::read(Address::new(0)),
                home: ChipId(1),
            },
            stage: ReqStage::ToHomeSlice,
        };
        assert_eq!(RingPayload::Req(req).wire_bytes(128), 16);
        let rsp = RspEnvelope {
            rsp: Response {
                id: RequestId(1),
                dest: ClusterId::new(ChipId(0), 0),
                access: MemAccess::read(Address::new(0)),
                origin: ResponseOrigin::RemoteMem,
            },
            fill: FillAction::FillLocalSlice,
        };
        assert_eq!(RingPayload::Rsp(rsp).wire_bytes(128), 144);
        assert_eq!(
            RingPayload::Writeback {
                line: LineAddr(0),
                home: ChipId(0)
            }
            .wire_bytes(128),
            144
        );
        assert_eq!(
            RingPayload::Inval {
                line: LineAddr(0),
                target: ChipId(0)
            }
            .wire_bytes(128),
            16
        );
    }
}
