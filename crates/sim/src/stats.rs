//! End-to-end run statistics.

use mcgpu_cache::CacheStats;
use mcgpu_types::{LlcOrgKind, ResponseOrigin};
use sac::controller::KernelRecord;

/// Statistics of one kernel invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Kernel index within the workload.
    pub index: usize,
    /// Cycles spent executing this kernel (including reconfiguration).
    pub cycles: u64,
    /// Accesses completed.
    pub accesses: u64,
    /// The LLC mode used for the bulk of the kernel (`None` for
    /// non-reconfigurable organizations).
    pub sac_mode: Option<sac::LlcMode>,
}

impl KernelStats {
    /// Performance proxy: completed accesses per cycle.
    pub fn perf(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.accesses as f64 / self.cycles as f64
        }
    }
}

/// Complete statistics of one simulated workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// The LLC organization simulated.
    pub organization: LlcOrgKind,
    /// Total cycles including kernel-boundary coherence and SAC
    /// reconfiguration overheads.
    pub cycles: u64,
    /// Read accesses completed.
    pub reads: u64,
    /// Write accesses completed.
    pub writes: u64,
    /// Aggregated L1 statistics.
    pub l1: CacheStats,
    /// Aggregated LLC statistics.
    pub llc: CacheStats,
    /// Read responses delivered, by data origin (Fig. 10 legend order:
    /// local LLC, remote LLC, local memory, remote memory).
    pub responses_by_origin: [u64; 4],
    /// Mean fraction of resident LLC lines holding local-partition data,
    /// sampled periodically (Fig. 9); the remainder is remote data.
    pub llc_local_fraction: f64,
    /// Mean LLC occupancy (valid lines / capacity), sampled periodically.
    pub llc_occupancy: f64,
    /// Total bytes moved over the inter-chip ring.
    pub ring_bytes: u64,
    /// DRAM reads served.
    pub dram_reads: u64,
    /// DRAM writes + writebacks served.
    pub dram_writes: u64,
    /// Cycles spent draining/flushing for SAC reconfigurations and
    /// kernel-boundary coherence.
    pub overhead_cycles: u64,
    /// High-water mark of simultaneously outstanding requests (MLP proxy).
    pub max_in_flight: u64,
    /// Per-kernel statistics.
    pub kernels: Vec<KernelStats>,
    /// SAC decision history (empty for other organizations).
    pub sac_history: Vec<KernelRecord>,
}

impl RunStats {
    /// Performance proxy: completed accesses per cycle. Speedups between
    /// organizations running the *same* workload are cycle ratios, which
    /// this exposes directly.
    pub fn perf(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.reads + self.writes) as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run over `baseline` on the same workload
    /// (cycle-count ratio).
    pub fn speedup_over(&self, baseline: &RunStats) -> f64 {
        debug_assert_eq!(
            self.reads + self.writes,
            baseline.reads + baseline.writes,
            "speedup requires identical workloads"
        );
        baseline.cycles as f64 / self.cycles.max(1) as f64
    }

    /// Effective LLC bandwidth proxy (Fig. 1c / Fig. 10): read responses
    /// delivered per cycle, regardless of origin.
    pub fn effective_llc_bandwidth(&self) -> f64 {
        let total: u64 = self.responses_by_origin.iter().sum();
        if self.cycles == 0 {
            0.0
        } else {
            total as f64 / self.cycles as f64
        }
    }

    /// Responses per cycle from one origin (Fig. 10 breakdown).
    pub fn response_rate(&self, origin: ResponseOrigin) -> f64 {
        let idx = ResponseOrigin::ALL
            .iter()
            .position(|&o| o == origin)
            .expect("origin in ALL");
        if self.cycles == 0 {
            0.0
        } else {
            self.responses_by_origin[idx] as f64 / self.cycles as f64
        }
    }

    /// LLC miss rate over the run (Fig. 1b).
    pub fn llc_miss_rate(&self) -> f64 {
        self.llc.miss_rate()
    }
}

impl RunStats {
    /// Serialize to canonical JSON for the golden-stats regression harness:
    /// fixed key order, 2-space indentation, floats printed with Rust's
    /// shortest-roundtrip formatting. Two runs produce byte-identical JSON
    /// iff their statistics are bit-identical, so committed snapshots under
    /// `tests/golden/` catch any behavioural drift in the simulator.
    pub fn to_canonical_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open();
        w.str_field("organization", self.organization.label());
        w.u64_field("cycles", self.cycles);
        w.u64_field("reads", self.reads);
        w.u64_field("writes", self.writes);
        w.cache_field("l1", &self.l1);
        w.cache_field("llc", &self.llc);
        w.u64_array_field("responses_by_origin", &self.responses_by_origin);
        w.f64_field("llc_local_fraction", self.llc_local_fraction);
        w.f64_field("llc_occupancy", self.llc_occupancy);
        w.u64_field("ring_bytes", self.ring_bytes);
        w.u64_field("dram_reads", self.dram_reads);
        w.u64_field("dram_writes", self.dram_writes);
        w.u64_field("overhead_cycles", self.overhead_cycles);
        w.u64_field("max_in_flight", self.max_in_flight);
        w.array_field("kernels", self.kernels.len(), |w, i| {
            let k = &self.kernels[i];
            w.open();
            w.u64_field("index", k.index as u64);
            w.u64_field("cycles", k.cycles);
            w.u64_field("accesses", k.accesses);
            w.str_field("sac_mode", k.sac_mode.map_or("none", |m| m.label()));
            w.close();
        });
        w.array_field("sac_history", self.sac_history.len(), |w, i| {
            let r = &self.sac_history[i];
            w.open();
            w.u64_field("start_cycle", r.start_cycle);
            w.u64_field("decision_cycle", r.decision_cycle);
            w.f64_field("r_local", r.inputs.r_local);
            w.f64_field("llc_hit_memory_side", r.inputs.llc_hit_memory_side);
            w.f64_field("llc_hit_sm_side", r.inputs.llc_hit_sm_side);
            w.f64_field("lsu_memory_side", r.inputs.lsu_memory_side);
            w.f64_field("lsu_sm_side", r.inputs.lsu_sm_side);
            w.f64_field("eab_memory_side", r.eab_memory_side);
            w.f64_field("eab_sm_side", r.eab_sm_side);
            w.str_field("mode", r.mode.label());
            w.u64_field("requests_observed", r.requests_observed);
            w.bool_field("fallback", r.fallback);
            w.close();
        });
        w.finish()
    }
}

/// Tiny canonical-JSON emitter: objects and arrays with deterministic
/// layout. Floats use `{:?}` (shortest representation that round-trips),
/// so byte equality of the output is exactly bit equality of the stats.
struct JsonWriter {
    out: String,
    indent: usize,
    /// Whether the current container already has a member (comma control).
    has_member: Vec<bool>,
}

impl JsonWriter {
    fn new() -> Self {
        JsonWriter {
            out: String::new(),
            indent: 0,
            has_member: Vec::new(),
        }
    }

    fn newline_key(&mut self, key: &str) {
        self.member_separator();
        self.out.push_str(&"  ".repeat(self.indent));
        self.out.push('"');
        self.out.push_str(key);
        self.out.push_str("\": ");
    }

    fn member_separator(&mut self) {
        if let Some(has) = self.has_member.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
        if !self.out.is_empty() {
            self.out.push('\n');
        }
    }

    fn open(&mut self) {
        self.out.push('{');
        self.indent += 1;
        self.has_member.push(false);
    }

    fn close(&mut self) {
        self.indent -= 1;
        self.has_member.pop();
        self.out.push('\n');
        self.out.push_str(&"  ".repeat(self.indent));
        self.out.push('}');
    }

    fn str_field(&mut self, key: &str, v: &str) {
        self.newline_key(key);
        self.out.push('"');
        self.out.push_str(v);
        self.out.push('"');
    }

    fn u64_field(&mut self, key: &str, v: u64) {
        self.newline_key(key);
        self.out.push_str(&v.to_string());
    }

    fn f64_field(&mut self, key: &str, v: f64) {
        self.newline_key(key);
        self.out.push_str(&format!("{v:?}"));
    }

    fn bool_field(&mut self, key: &str, v: bool) {
        self.newline_key(key);
        self.out.push_str(if v { "true" } else { "false" });
    }

    fn u64_array_field(&mut self, key: &str, vs: &[u64]) {
        self.newline_key(key);
        self.out.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.out.push_str(&v.to_string());
        }
        self.out.push(']');
    }

    fn cache_field(&mut self, key: &str, s: &CacheStats) {
        self.newline_key(key);
        self.open();
        self.u64_field("accesses", s.accesses);
        self.u64_field("hits", s.hits);
        self.u64_field("misses", s.misses);
        self.u64_field("sector_misses", s.sector_misses);
        self.u64_field("fills", s.fills);
        self.u64_field("evictions", s.evictions);
        self.u64_field("fill_rejections", s.fill_rejections);
        self.close();
    }

    fn array_field(&mut self, key: &str, len: usize, mut item: impl FnMut(&mut Self, usize)) {
        self.newline_key(key);
        if len == 0 {
            self.out.push_str("[]");
            return;
        }
        self.out.push('[');
        self.indent += 1;
        self.has_member.push(false);
        for i in 0..len {
            self.member_separator();
            self.out.push_str(&"  ".repeat(self.indent));
            // The item itself opens an object; suppress its key machinery.
            item(self, i);
        }
        self.indent -= 1;
        self.has_member.pop();
        self.out.push('\n');
        self.out.push_str(&"  ".repeat(self.indent));
        self.out.push(']');
    }

    fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

/// Harmonic mean of positive values, as the paper uses for average speedups.
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let denom: f64 = values.iter().map(|v| 1.0 / v.max(1e-12)).sum();
    values.len() as f64 / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_basics() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        // HM of 1 and 3 is 1.5.
        assert!((harmonic_mean(&[1.0, 3.0]) - 1.5).abs() < 1e-12);
        // HM is dominated by small values.
        assert!(harmonic_mean(&[0.5, 10.0]) < 1.0);
    }

    fn stats(cycles: u64, reads: u64) -> RunStats {
        RunStats {
            organization: LlcOrgKind::MemorySide,
            cycles,
            reads,
            writes: 0,
            l1: CacheStats::default(),
            llc: CacheStats::default(),
            responses_by_origin: [10, 20, 30, 40],
            llc_local_fraction: 1.0,
            llc_occupancy: 0.5,
            ring_bytes: 0,
            dram_reads: 0,
            dram_writes: 0,
            overhead_cycles: 0,
            max_in_flight: 0,
            kernels: Vec::new(),
            sac_history: Vec::new(),
        }
    }

    #[test]
    fn perf_and_speedup() {
        let fast = stats(100, 1000);
        let slow = stats(400, 1000);
        assert!((fast.perf() - 10.0).abs() < 1e-12);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn origin_rates_sum_to_effective_bandwidth() {
        let s = stats(100, 1000);
        let sum: f64 = ResponseOrigin::ALL
            .iter()
            .map(|&o| s.response_rate(o))
            .sum();
        assert!((sum - s.effective_llc_bandwidth()).abs() < 1e-12);
        assert!((s.response_rate(ResponseOrigin::RemoteMem) - 0.4).abs() < 1e-12);
    }
}
