//! End-to-end run statistics.

use mcgpu_cache::CacheStats;
use mcgpu_types::json::{parse, JsonValue};
use mcgpu_types::{LlcOrgKind, ParseError, ResponseOrigin};
use sac::controller::KernelRecord;
use sac::eab::EabInputs;

/// Statistics of one kernel invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Kernel index within the workload.
    pub index: usize,
    /// Cycles spent executing this kernel (including reconfiguration).
    pub cycles: u64,
    /// Accesses completed.
    pub accesses: u64,
    /// The LLC mode used for the bulk of the kernel (`None` for
    /// non-reconfigurable organizations).
    pub sac_mode: Option<sac::LlcMode>,
}

impl KernelStats {
    /// Performance proxy: completed accesses per cycle.
    pub fn perf(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.accesses as f64 / self.cycles as f64
        }
    }

    /// Serialize into a checkpoint payload.
    pub fn save(&self, e: &mut mcgpu_types::Enc) {
        e.put_usize(self.index);
        e.put_u64(self.cycles);
        e.put_u64(self.accesses);
        e.put_bool(self.sac_mode.is_some());
        if let Some(mode) = self.sac_mode {
            sac::controller::save_mode(e, mode);
        }
    }

    /// Deserialize stats saved by [`KernelStats::save`].
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input.
    pub fn load(d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<Self> {
        Ok(KernelStats {
            index: d.get_usize()?,
            cycles: d.get_u64()?,
            accesses: d.get_u64()?,
            sac_mode: if d.get_bool()? {
                Some(sac::controller::load_mode(d)?)
            } else {
                None
            },
        })
    }
}

/// Complete statistics of one simulated workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// The LLC organization simulated.
    pub organization: LlcOrgKind,
    /// Total cycles including kernel-boundary coherence and SAC
    /// reconfiguration overheads.
    pub cycles: u64,
    /// Read accesses completed.
    pub reads: u64,
    /// Write accesses completed.
    pub writes: u64,
    /// Aggregated L1 statistics.
    pub l1: CacheStats,
    /// Aggregated LLC statistics.
    pub llc: CacheStats,
    /// Read responses delivered, by data origin (Fig. 10 legend order:
    /// local LLC, remote LLC, local memory, remote memory).
    pub responses_by_origin: [u64; 4],
    /// Mean fraction of resident LLC lines holding local-partition data,
    /// sampled periodically (Fig. 9); the remainder is remote data.
    pub llc_local_fraction: f64,
    /// Mean LLC occupancy (valid lines / capacity), sampled periodically.
    pub llc_occupancy: f64,
    /// Total bytes moved over the inter-chip ring.
    pub ring_bytes: u64,
    /// DRAM reads served.
    pub dram_reads: u64,
    /// DRAM writes + writebacks served.
    pub dram_writes: u64,
    /// Cycles spent draining/flushing for SAC reconfigurations and
    /// kernel-boundary coherence.
    pub overhead_cycles: u64,
    /// High-water mark of simultaneously outstanding requests (MLP proxy).
    pub max_in_flight: u64,
    /// Per-kernel statistics.
    pub kernels: Vec<KernelStats>,
    /// SAC decision history (empty for other organizations).
    pub sac_history: Vec<KernelRecord>,
}

impl RunStats {
    /// Performance proxy: completed accesses per cycle. Speedups between
    /// organizations running the *same* workload are cycle ratios, which
    /// this exposes directly.
    pub fn perf(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.reads + self.writes) as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run over `baseline` on the same workload
    /// (cycle-count ratio).
    pub fn speedup_over(&self, baseline: &RunStats) -> f64 {
        debug_assert_eq!(
            self.reads + self.writes,
            baseline.reads + baseline.writes,
            "speedup requires identical workloads"
        );
        baseline.cycles as f64 / self.cycles.max(1) as f64
    }

    /// Effective LLC bandwidth proxy (Fig. 1c / Fig. 10): read responses
    /// delivered per cycle, regardless of origin.
    pub fn effective_llc_bandwidth(&self) -> f64 {
        let total: u64 = self.responses_by_origin.iter().sum();
        if self.cycles == 0 {
            0.0
        } else {
            total as f64 / self.cycles as f64
        }
    }

    /// Responses per cycle from one origin (Fig. 10 breakdown).
    pub fn response_rate(&self, origin: ResponseOrigin) -> f64 {
        let idx = ResponseOrigin::ALL
            .iter()
            .position(|&o| o == origin)
            .expect("origin in ALL");
        if self.cycles == 0 {
            0.0
        } else {
            self.responses_by_origin[idx] as f64 / self.cycles as f64
        }
    }

    /// LLC miss rate over the run (Fig. 1b).
    pub fn llc_miss_rate(&self) -> f64 {
        self.llc.miss_rate()
    }
}

impl RunStats {
    /// Serialize to canonical JSON for the golden-stats regression harness:
    /// fixed key order, 2-space indentation, floats printed with Rust's
    /// shortest-roundtrip formatting. Two runs produce byte-identical JSON
    /// iff their statistics are bit-identical, so committed snapshots under
    /// `tests/golden/` catch any behavioural drift in the simulator.
    pub fn to_canonical_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open();
        w.str_field("organization", self.organization.label());
        w.u64_field("cycles", self.cycles);
        w.u64_field("reads", self.reads);
        w.u64_field("writes", self.writes);
        w.cache_field("l1", &self.l1);
        w.cache_field("llc", &self.llc);
        w.u64_array_field("responses_by_origin", &self.responses_by_origin);
        w.f64_field("llc_local_fraction", self.llc_local_fraction);
        w.f64_field("llc_occupancy", self.llc_occupancy);
        w.u64_field("ring_bytes", self.ring_bytes);
        w.u64_field("dram_reads", self.dram_reads);
        w.u64_field("dram_writes", self.dram_writes);
        w.u64_field("overhead_cycles", self.overhead_cycles);
        w.u64_field("max_in_flight", self.max_in_flight);
        w.array_field("kernels", self.kernels.len(), |w, i| {
            let k = &self.kernels[i];
            w.open();
            w.u64_field("index", k.index as u64);
            w.u64_field("cycles", k.cycles);
            w.u64_field("accesses", k.accesses);
            w.str_field("sac_mode", k.sac_mode.map_or("none", |m| m.label()));
            w.close();
        });
        w.array_field("sac_history", self.sac_history.len(), |w, i| {
            let r = &self.sac_history[i];
            w.open();
            w.u64_field("start_cycle", r.start_cycle);
            w.u64_field("decision_cycle", r.decision_cycle);
            w.f64_field("r_local", r.inputs.r_local);
            w.f64_field("llc_hit_memory_side", r.inputs.llc_hit_memory_side);
            w.f64_field("llc_hit_sm_side", r.inputs.llc_hit_sm_side);
            w.f64_field("lsu_memory_side", r.inputs.lsu_memory_side);
            w.f64_field("lsu_sm_side", r.inputs.lsu_sm_side);
            w.f64_field("eab_memory_side", r.eab_memory_side);
            w.f64_field("eab_sm_side", r.eab_sm_side);
            w.str_field("mode", r.mode.label());
            w.u64_field("requests_observed", r.requests_observed);
            w.bool_field("fallback", r.fallback);
            w.close();
        });
        w.finish()
    }

    /// Reconstruct stats from [`RunStats::to_canonical_json`] output.
    ///
    /// The round trip is exact: u64 fields parse from their decimal text and
    /// f64 fields from Rust's shortest-roundtrip `{:?}` representation, so
    /// `RunStats::from_canonical_json(&s.to_canonical_json())` equals `s`
    /// bit-for-bit — the property the resumable sweep journal relies on to
    /// replay completed cells byte-identically.
    ///
    /// # Errors
    /// [`ParseError`] when the text is not valid JSON or a required field is
    /// missing or mistyped.
    pub fn from_canonical_json(text: &str) -> Result<RunStats, ParseError> {
        // The canonical writer ends the document after the final array
        // without closing the top-level object (snapshots under
        // `tests/golden/` are committed in that form, so the writer cannot
        // change). Accept both the brace-less and the strictly closed form.
        let patched;
        let doc = if text.trim_end().ends_with('}') {
            text
        } else {
            patched = format!("{text}}}");
            &patched
        };
        let v = parse(doc)?;

        fn get<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, ParseError> {
            v.get(key)
                .ok_or_else(|| ParseError::new(format!("missing field `{key}`")))
        }
        fn u64f(v: &JsonValue, key: &str) -> Result<u64, ParseError> {
            get(v, key)?
                .as_u64()
                .ok_or_else(|| ParseError::new(format!("field `{key}` is not a u64")))
        }
        fn f64f(v: &JsonValue, key: &str) -> Result<f64, ParseError> {
            get(v, key)?
                .as_f64()
                .ok_or_else(|| ParseError::new(format!("field `{key}` is not a number")))
        }
        fn strf<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, ParseError> {
            get(v, key)?
                .as_str()
                .ok_or_else(|| ParseError::new(format!("field `{key}` is not a string")))
        }
        fn boolf(v: &JsonValue, key: &str) -> Result<bool, ParseError> {
            get(v, key)?
                .as_bool()
                .ok_or_else(|| ParseError::new(format!("field `{key}` is not a bool")))
        }
        fn cachef(v: &JsonValue, key: &str) -> Result<CacheStats, ParseError> {
            let c = get(v, key)?;
            Ok(CacheStats {
                accesses: u64f(c, "accesses")?,
                hits: u64f(c, "hits")?,
                misses: u64f(c, "misses")?,
                sector_misses: u64f(c, "sector_misses")?,
                fills: u64f(c, "fills")?,
                evictions: u64f(c, "evictions")?,
                fill_rejections: u64f(c, "fill_rejections")?,
            })
        }
        fn arrayf<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], ParseError> {
            get(v, key)?
                .as_array()
                .ok_or_else(|| ParseError::new(format!("field `{key}` is not an array")))
        }

        let organization = LlcOrgKind::from_label(strf(&v, "organization")?).ok_or_else(|| {
            ParseError::new(format!(
                "unknown organization `{}`",
                strf(&v, "organization").unwrap_or_default()
            ))
        })?;

        let origins = arrayf(&v, "responses_by_origin")?;
        if origins.len() != 4 {
            return Err(ParseError::new("responses_by_origin must have 4 entries"));
        }
        let mut responses_by_origin = [0u64; 4];
        for (slot, item) in responses_by_origin.iter_mut().zip(origins) {
            *slot = item
                .as_u64()
                .ok_or_else(|| ParseError::new("responses_by_origin entry is not a u64"))?;
        }

        let kernels =
            arrayf(&v, "kernels")?
                .iter()
                .map(|k| {
                    let mode = strf(k, "sac_mode")?;
                    Ok(KernelStats {
                        index: u64f(k, "index")? as usize,
                        cycles: u64f(k, "cycles")?,
                        accesses: u64f(k, "accesses")?,
                        sac_mode: if mode == "none" {
                            None
                        } else {
                            Some(sac::LlcMode::from_label(mode).ok_or_else(|| {
                                ParseError::new(format!("unknown sac_mode `{mode}`"))
                            })?)
                        },
                    })
                })
                .collect::<Result<Vec<_>, ParseError>>()?;

        let sac_history = arrayf(&v, "sac_history")?
            .iter()
            .map(|r| {
                let mode = strf(r, "mode")?;
                Ok(KernelRecord {
                    start_cycle: u64f(r, "start_cycle")?,
                    decision_cycle: u64f(r, "decision_cycle")?,
                    inputs: EabInputs {
                        r_local: f64f(r, "r_local")?,
                        llc_hit_memory_side: f64f(r, "llc_hit_memory_side")?,
                        llc_hit_sm_side: f64f(r, "llc_hit_sm_side")?,
                        lsu_memory_side: f64f(r, "lsu_memory_side")?,
                        lsu_sm_side: f64f(r, "lsu_sm_side")?,
                    },
                    eab_memory_side: f64f(r, "eab_memory_side")?,
                    eab_sm_side: f64f(r, "eab_sm_side")?,
                    mode: sac::LlcMode::from_label(mode)
                        .ok_or_else(|| ParseError::new(format!("unknown mode `{mode}`")))?,
                    requests_observed: u64f(r, "requests_observed")?,
                    fallback: boolf(r, "fallback")?,
                })
            })
            .collect::<Result<Vec<_>, ParseError>>()?;

        Ok(RunStats {
            organization,
            cycles: u64f(&v, "cycles")?,
            reads: u64f(&v, "reads")?,
            writes: u64f(&v, "writes")?,
            l1: cachef(&v, "l1")?,
            llc: cachef(&v, "llc")?,
            responses_by_origin,
            llc_local_fraction: f64f(&v, "llc_local_fraction")?,
            llc_occupancy: f64f(&v, "llc_occupancy")?,
            ring_bytes: u64f(&v, "ring_bytes")?,
            dram_reads: u64f(&v, "dram_reads")?,
            dram_writes: u64f(&v, "dram_writes")?,
            overhead_cycles: u64f(&v, "overhead_cycles")?,
            max_in_flight: u64f(&v, "max_in_flight")?,
            kernels,
            sac_history,
        })
    }
}

/// Tiny canonical-JSON emitter: objects and arrays with deterministic
/// layout. Floats use `{:?}` (shortest representation that round-trips),
/// so byte equality of the output is exactly bit equality of the stats.
/// Shared with the observability report emitter (`crate::obs`), which
/// uses the same conventions for its own documents.
pub(crate) struct JsonWriter {
    out: String,
    indent: usize,
    /// Whether the current container already has a member (comma control).
    has_member: Vec<bool>,
}

impl JsonWriter {
    pub(crate) fn new() -> Self {
        JsonWriter {
            out: String::new(),
            indent: 0,
            has_member: Vec::new(),
        }
    }

    fn newline_key(&mut self, key: &str) {
        self.member_separator();
        self.out.push_str(&"  ".repeat(self.indent));
        self.out.push('"');
        self.out.push_str(key);
        self.out.push_str("\": ");
    }

    fn member_separator(&mut self) {
        if let Some(has) = self.has_member.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
        if !self.out.is_empty() {
            self.out.push('\n');
        }
    }

    pub(crate) fn open(&mut self) {
        self.out.push('{');
        self.indent += 1;
        self.has_member.push(false);
    }

    pub(crate) fn close(&mut self) {
        self.indent -= 1;
        self.has_member.pop();
        self.out.push('\n');
        self.out.push_str(&"  ".repeat(self.indent));
        self.out.push('}');
    }

    pub(crate) fn str_field(&mut self, key: &str, v: &str) {
        self.newline_key(key);
        self.out.push('"');
        self.out.push_str(v);
        self.out.push('"');
    }

    pub(crate) fn u64_field(&mut self, key: &str, v: u64) {
        self.newline_key(key);
        self.out.push_str(&v.to_string());
    }

    pub(crate) fn f64_field(&mut self, key: &str, v: f64) {
        self.newline_key(key);
        self.out.push_str(&format!("{v:?}"));
    }

    pub(crate) fn bool_field(&mut self, key: &str, v: bool) {
        self.newline_key(key);
        self.out.push_str(if v { "true" } else { "false" });
    }

    pub(crate) fn u64_array_field(&mut self, key: &str, vs: &[u64]) {
        self.newline_key(key);
        self.out.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.out.push_str(&v.to_string());
        }
        self.out.push(']');
    }

    fn cache_field(&mut self, key: &str, s: &CacheStats) {
        self.newline_key(key);
        self.open();
        self.u64_field("accesses", s.accesses);
        self.u64_field("hits", s.hits);
        self.u64_field("misses", s.misses);
        self.u64_field("sector_misses", s.sector_misses);
        self.u64_field("fills", s.fills);
        self.u64_field("evictions", s.evictions);
        self.u64_field("fill_rejections", s.fill_rejections);
        self.close();
    }

    pub(crate) fn array_field(
        &mut self,
        key: &str,
        len: usize,
        mut item: impl FnMut(&mut Self, usize),
    ) {
        self.newline_key(key);
        if len == 0 {
            self.out.push_str("[]");
            return;
        }
        self.out.push('[');
        self.indent += 1;
        self.has_member.push(false);
        for i in 0..len {
            self.member_separator();
            self.out.push_str(&"  ".repeat(self.indent));
            // The item itself opens an object; suppress its key machinery.
            item(self, i);
        }
        self.indent -= 1;
        self.has_member.pop();
        self.out.push('\n');
        self.out.push_str(&"  ".repeat(self.indent));
        self.out.push(']');
    }

    pub(crate) fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

/// Harmonic mean of positive values, as the paper uses for average speedups.
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let denom: f64 = values.iter().map(|v| 1.0 / v.max(1e-12)).sum();
    values.len() as f64 / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_basics() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        // HM of 1 and 3 is 1.5.
        assert!((harmonic_mean(&[1.0, 3.0]) - 1.5).abs() < 1e-12);
        // HM is dominated by small values.
        assert!(harmonic_mean(&[0.5, 10.0]) < 1.0);
    }

    fn stats(cycles: u64, reads: u64) -> RunStats {
        RunStats {
            organization: LlcOrgKind::MemorySide,
            cycles,
            reads,
            writes: 0,
            l1: CacheStats::default(),
            llc: CacheStats::default(),
            responses_by_origin: [10, 20, 30, 40],
            llc_local_fraction: 1.0,
            llc_occupancy: 0.5,
            ring_bytes: 0,
            dram_reads: 0,
            dram_writes: 0,
            overhead_cycles: 0,
            max_in_flight: 0,
            kernels: Vec::new(),
            sac_history: Vec::new(),
        }
    }

    #[test]
    fn perf_and_speedup() {
        let fast = stats(100, 1000);
        let slow = stats(400, 1000);
        assert!((fast.perf() - 10.0).abs() < 1e-12);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn canonical_json_round_trips() {
        let mut s = stats(12_345, 678);
        s.organization = LlcOrgKind::Sac;
        s.llc_local_fraction = 0.123456789012345; // exercises shortest-roundtrip floats
        s.kernels.push(KernelStats {
            index: 3,
            cycles: 99,
            accesses: 1_000,
            sac_mode: Some(sac::LlcMode::SmSide),
        });
        s.sac_history.push(KernelRecord {
            start_cycle: 1,
            decision_cycle: 2,
            inputs: EabInputs {
                r_local: 0.25,
                llc_hit_memory_side: 0.5,
                llc_hit_sm_side: 1.0 / 3.0,
                lsu_memory_side: 0.75,
                lsu_sm_side: 0.9,
            },
            eab_memory_side: 437.5,
            eab_sm_side: 96.0,
            mode: sac::LlcMode::MemorySide,
            requests_observed: 4096,
            fallback: false,
        });
        let json = s.to_canonical_json();
        let back = RunStats::from_canonical_json(&json).unwrap();
        assert_eq!(back, s);
        // Bit-exact: re-serializing yields identical bytes.
        assert_eq!(back.to_canonical_json(), json);
    }

    #[test]
    fn canonical_json_key_set_is_pinned() {
        // Guard against counters that are accumulated but never surfaced
        // (or surfaced twice): the exact top-level key set of the golden
        // format is pinned here, in order. Changing it requires a golden
        // regeneration, which is a deliberate, reviewed event.
        let mut s = stats(1, 1);
        s.organization = LlcOrgKind::Sac;
        let json = s.to_canonical_json();
        let keys: Vec<&str> = json
            .lines()
            .filter(|l| l.starts_with("  \""))
            .map(|l| {
                let rest = &l[3..];
                &rest[..rest.find('"').unwrap()]
            })
            .collect();
        assert_eq!(
            keys,
            [
                "organization",
                "cycles",
                "reads",
                "writes",
                "l1",
                "llc",
                "responses_by_origin",
                "llc_local_fraction",
                "llc_occupancy",
                "ring_bytes",
                "dram_reads",
                "dram_writes",
                "overhead_cycles",
                "max_in_flight",
                "kernels",
                "sac_history",
            ]
        );
    }

    #[test]
    fn from_canonical_json_rejects_malformed_input() {
        assert!(RunStats::from_canonical_json("").is_err());
        assert!(RunStats::from_canonical_json("{}").is_err());
        let json = stats(1, 1).to_canonical_json();
        let truncated = &json[..json.len() / 2];
        assert!(RunStats::from_canonical_json(truncated).is_err());
    }

    #[test]
    fn origin_rates_sum_to_effective_bandwidth() {
        let s = stats(100, 1000);
        let sum: f64 = ResponseOrigin::ALL
            .iter()
            .map(|&o| s.response_rate(o))
            .sum();
        assert!((sum - s.effective_llc_bandwidth()).abs() < 1e-12);
        assert!((s.response_rate(ResponseOrigin::RemoteMem) - 0.4).abs() < 1e-12);
    }
}
