//! Checkpoint/restore correctness: a run interrupted at an arbitrary
//! cycle, snapshotted and resumed in a freshly built simulator must be
//! **byte-identical** to the uninterrupted run — statistics and
//! observability reports alike — across organizations and fault plans.
//! The loader must reject (never panic on) torn, truncated or
//! mismatched snapshots.

use mcgpu_sim::{SimBuilder, SimError, Simulator};
use mcgpu_trace::{generate, profiles, TraceParams, Workload};
use mcgpu_types::ckpt::{read_snapshot, write_snapshot, CkptError};
use mcgpu_types::fault::{FaultEvent, FaultKind, FaultPlan};
use mcgpu_types::{ChipId, LlcOrgKind, MachineConfig, ObsConfig};
use proptest::prelude::*;

fn workload(cfg: &MachineConfig, bench: &str, accesses: usize) -> Workload {
    let params = TraceParams {
        total_accesses: accesses,
        ..TraceParams::quick()
    };
    generate(cfg, &profiles::by_name(bench).unwrap(), &params)
}

/// A fault plan that degrades (not partitions) the machine, so runs
/// still complete: one link loses half its lanes, one DRAM channel dies.
fn degrading_plan(at: u64) -> FaultPlan {
    FaultPlan::new(vec![
        FaultEvent {
            cycle: at,
            kind: FaultKind::LinkDegrade {
                a: ChipId(0),
                b: ChipId(1),
                factor: 0.5,
            },
        },
        FaultEvent {
            cycle: at * 2,
            kind: FaultKind::DramFail {
                chip: ChipId(2),
                channel: 0,
            },
        },
    ])
}

fn builder(cfg: &MachineConfig, org: LlcOrgKind, plan: &FaultPlan) -> SimBuilder {
    SimBuilder::new(cfg.clone())
        .organization(org)
        .fault_plan(plan.clone())
        .observability(ObsConfig::trace())
}

fn build(cfg: &MachineConfig, org: LlcOrgKind, plan: &FaultPlan) -> Simulator {
    builder(cfg, org, plan)
        .build()
        .expect("valid machine configuration")
}

/// Run to completion; return `(stats json, obs json)`.
fn run_straight(
    cfg: &MachineConfig,
    org: LlcOrgKind,
    plan: &FaultPlan,
    wl: &Workload,
) -> (String, String) {
    let mut sim = build(cfg, org, plan);
    let stats = sim.run(wl).expect("straight run completes");
    let obs = sim.take_obs_report().expect("observability was on");
    (stats.to_canonical_json(), obs.to_canonical_json())
}

/// Interrupt a run at `cut` cycles via the cycle budget, snapshot the
/// stopped machine, restore into a fresh simulator and run the rest.
/// Returns `None` when the run finished before `cut` (nothing to
/// resume).
fn run_interrupted(
    cfg: &MachineConfig,
    org: LlcOrgKind,
    plan: &FaultPlan,
    wl: &Workload,
    cut: u64,
) -> Option<(String, String)> {
    let mut victim = builder(cfg, org, plan)
        .max_cycles(cut)
        .build()
        .expect("valid machine configuration");
    match victim.run(wl) {
        Err(SimError::CycleLimit { .. }) => {}
        Ok(_) => return None,
        Err(e) => panic!("unexpected abort at cut {cut}: {e}"),
    }
    let payload = victim.checkpoint(wl);
    drop(victim);

    let mut resumed = build(cfg, org, plan);
    resumed.restore(&payload, wl).expect("snapshot restores");
    assert_eq!(resumed.cycle(), cut, "restore lands on the snapshot cycle");
    let stats = resumed.run(wl).expect("resumed run completes");
    let obs = resumed.take_obs_report().expect("observability was on");
    Some((stats.to_canonical_json(), obs.to_canonical_json()))
}

#[test]
fn restore_is_byte_identical_across_all_organizations() {
    let cfg = MachineConfig::experiment_baseline();
    let wl = workload(&cfg, "CFD", 60_000);
    let plan = FaultPlan::none();
    for org in LlcOrgKind::ALL {
        let straight = run_straight(&cfg, org, &plan, &wl);
        let resumed = run_interrupted(&cfg, org, &plan, &wl, 2_500)
            .unwrap_or_else(|| panic!("{org}: run finished before the cut"));
        assert_eq!(straight.0, resumed.0, "{org}: RunStats diverged");
        assert_eq!(straight.1, resumed.1, "{org}: obs report diverged");
    }
}

#[test]
fn restore_is_byte_identical_under_fault_injection() {
    let cfg = MachineConfig::experiment_baseline();
    let wl = workload(&cfg, "SN", 60_000);
    // Cut *between* the two fault events: the first is already applied
    // (and its cursor advanced), the second must still fire on resume.
    let plan = degrading_plan(2_000);
    let straight = run_straight(&cfg, LlcOrgKind::Sac, &plan, &wl);
    let resumed = run_interrupted(&cfg, LlcOrgKind::Sac, &plan, &wl, 3_000)
        .expect("run finished before the cut");
    assert_eq!(straight.0, resumed.0, "RunStats diverged");
    assert_eq!(straight.1, resumed.1, "obs report diverged");
}

#[test]
fn double_interruption_still_matches_the_straight_run() {
    let cfg = MachineConfig::experiment_baseline();
    let wl = workload(&cfg, "CFD", 60_000);
    let plan = FaultPlan::none();
    let org = LlcOrgKind::Sac;
    let straight = run_straight(&cfg, org, &plan, &wl);

    let mut victim = builder(&cfg, org, &plan).max_cycles(1_500).build().unwrap();
    assert!(matches!(victim.run(&wl), Err(SimError::CycleLimit { .. })));
    let first = victim.checkpoint(&wl);

    let mut second_victim = builder(&cfg, org, &plan).max_cycles(4_000).build().unwrap();
    second_victim.restore(&first, &wl).unwrap();
    assert!(matches!(
        second_victim.run(&wl),
        Err(SimError::CycleLimit { .. })
    ));
    let second = second_victim.checkpoint(&wl);

    let mut resumed = build(&cfg, org, &plan);
    resumed.restore(&second, &wl).unwrap();
    let stats = resumed.run(&wl).expect("resumed run completes");
    let obs = resumed.take_obs_report().unwrap();
    assert_eq!(straight.0, stats.to_canonical_json());
    assert_eq!(straight.1, obs.to_canonical_json());
}

#[test]
fn checkpoint_bytes_are_deterministic() {
    let cfg = MachineConfig::experiment_baseline();
    let wl = workload(&cfg, "RN", 40_000);
    let plan = FaultPlan::none();
    let mut victim = builder(&cfg, LlcOrgKind::Dynamic, &plan)
        .max_cycles(2_000)
        .build()
        .unwrap();
    let _ = victim.run(&wl);
    let a = victim.checkpoint(&wl);
    let b = victim.checkpoint(&wl);
    assert_eq!(a, b, "checkpointing must be read-only and deterministic");

    // A restored machine re-snapshots to the same bytes: restore is
    // lossless.
    let mut resumed = build(&cfg, LlcOrgKind::Dynamic, &plan);
    resumed.restore(&a, &wl).unwrap();
    assert_eq!(a, resumed.checkpoint(&wl), "restore round-trip drifted");
}

#[test]
fn restore_rejects_wrong_workload_config_and_organization() {
    let cfg = MachineConfig::experiment_baseline();
    let wl = workload(&cfg, "CFD", 40_000);
    let plan = FaultPlan::none();
    let mut victim = builder(&cfg, LlcOrgKind::MemorySide, &plan)
        .max_cycles(2_000)
        .build()
        .unwrap();
    let _ = victim.run(&wl);
    let payload = victim.checkpoint(&wl);

    // Different workload → fingerprint mismatch.
    let other_wl = workload(&cfg, "SN", 40_000);
    let err = build(&cfg, LlcOrgKind::MemorySide, &plan)
        .restore(&payload, &other_wl)
        .unwrap_err();
    assert!(
        matches!(err, CkptError::FingerprintMismatch { .. }),
        "got {err}"
    );

    // Different machine configuration → fingerprint mismatch.
    let mut small = cfg.clone();
    small.chips = 2;
    let small_wl = workload(&small, "CFD", 40_000);
    let err = build(&small, LlcOrgKind::MemorySide, &plan)
        .restore(&payload, &small_wl)
        .unwrap_err();
    assert!(
        matches!(err, CkptError::FingerprintMismatch { .. }),
        "got {err}"
    );

    // Different inter-chip topology, same chip count → fingerprint
    // mismatch: a ring snapshot must never restore into a mesh machine
    // (the caller falls back to a full re-run instead).
    let mut mesh = cfg.clone();
    mesh.topology = mcgpu_types::TopologyKind::Mesh2D;
    let mesh_wl = workload(&mesh, "CFD", 40_000);
    let err = build(&mesh, LlcOrgKind::MemorySide, &plan)
        .restore(&payload, &mesh_wl)
        .unwrap_err();
    assert!(
        matches!(err, CkptError::FingerprintMismatch { .. }),
        "got {err}"
    );

    // Same config + workload, different organization → decode error
    // naming the organization mismatch.
    let err = build(&cfg, LlcOrgKind::Sac, &plan)
        .restore(&payload, &wl)
        .unwrap_err();
    assert!(
        matches!(&err, CkptError::Decode(d) if d.contains("organization")),
        "got {err}"
    );

    // Observability mismatch (snapshot recorded, simulator off).
    let err = SimBuilder::new(cfg.clone())
        .organization(LlcOrgKind::MemorySide)
        .build()
        .unwrap()
        .restore(&payload, &wl)
        .unwrap_err();
    assert!(
        matches!(&err, CkptError::Decode(d) if d.contains("observability")),
        "got {err}"
    );
}

#[test]
fn snapshot_files_round_trip_and_reject_torn_writes() {
    let cfg = MachineConfig::experiment_baseline();
    let wl = workload(&cfg, "SN", 40_000);
    let plan = FaultPlan::none();
    let mut victim = builder(&cfg, LlcOrgKind::SmSide, &plan)
        .max_cycles(2_000)
        .build()
        .unwrap();
    let _ = victim.run(&wl);

    let dir = std::env::temp_dir().join(format!("mcgpu-ckpt-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cell.ckpt");
    victim
        .write_checkpoint(&path, &wl)
        .expect("snapshot writes");

    let mut resumed = build(&cfg, LlcOrgKind::SmSide, &plan);
    resumed
        .restore_from_file(&path, &wl)
        .expect("file restores");
    assert_eq!(resumed.cycle(), victim.cycle());

    // A truncated file (torn write) is rejected, not misparsed.
    let full = std::fs::read(&path).unwrap();
    let torn = dir.join("torn.ckpt");
    std::fs::write(&torn, &full[..full.len() - 9]).unwrap();
    assert!(read_snapshot(&torn).is_err(), "torn file accepted");

    // A corrupted byte anywhere fails the checksum.
    let mut flipped = full.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    let bad = dir.join("bad.ckpt");
    std::fs::write(&bad, &flipped).unwrap();
    assert!(read_snapshot(&bad).is_err(), "corrupt file accepted");

    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole property: interrupt anywhere, under any organization,
    /// with or without fault injection — the resumed run is byte-identical.
    #[test]
    fn interrupted_runs_resume_byte_identically(
        org_idx in 0usize..LlcOrgKind::ALL.len(),
        cut in 600u64..6_000,
        with_faults in any::<bool>(),
        bench_idx in 0usize..3,
    ) {
        let cfg = MachineConfig::experiment_baseline();
        let bench = ["CFD", "SN", "RN"][bench_idx];
        let wl = workload(&cfg, bench, 50_000);
        let org = LlcOrgKind::ALL[org_idx];
        let plan = if with_faults {
            degrading_plan(cut / 2)
        } else {
            FaultPlan::none()
        };
        if let Some(resumed) = run_interrupted(&cfg, org, &plan, &wl, cut) {
            let straight = run_straight(&cfg, org, &plan, &wl);
            prop_assert_eq!(straight.0, resumed.0, "RunStats diverged");
            prop_assert_eq!(straight.1, resumed.1, "obs report diverged");
        }
    }

    /// Loader fuzz: truncating or corrupting a framed snapshot anywhere
    /// yields a typed error, never a panic or a successful restore.
    #[test]
    fn mangled_snapshots_are_rejected_not_misparsed(
        cut_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let cfg = MachineConfig::experiment_baseline();
        let wl = workload(&cfg, "SN", 30_000);
        let plan = FaultPlan::none();
        let mut victim = builder(&cfg, LlcOrgKind::Sac, &plan)
            .max_cycles(1_200)
            .build()
            .unwrap();
        let _ = victim.run(&wl);
        let payload = victim.checkpoint(&wl);

        let dir = std::env::temp_dir()
            .join(format!("mcgpu-ckpt-fuzz-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.ckpt");
        write_snapshot(&path, &payload).unwrap();
        let full = std::fs::read(&path).unwrap();

        // Truncation at an arbitrary byte boundary.
        let cut = ((full.len() as f64 * cut_frac) as usize).min(full.len() - 1);
        std::fs::write(&path, &full[..cut]).unwrap();
        prop_assert!(read_snapshot(&path).is_err());

        // Single-bit corruption at an arbitrary offset.
        let mut bad = full.clone();
        let at = ((bad.len() as f64 * flip_frac) as usize).min(bad.len() - 1);
        bad[at] ^= 1 << flip_bit;
        std::fs::write(&path, &bad).unwrap();
        let restored = read_snapshot(&path)
            .and_then(|p| build(&cfg, LlcOrgKind::Sac, &plan).restore(&p, &wl));
        prop_assert!(restored.is_err(), "corrupted snapshot accepted");

        std::fs::remove_dir_all(&dir).ok();
    }
}
