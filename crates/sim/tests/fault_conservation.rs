//! Property test: packet conservation under arbitrary fault plans.
//!
//! For any valid schedule of link failures/degradations, DRAM channel
//! faults and LLC slice disables, a run either completes with *exactly*
//! the fault-free work count (every injected request retires exactly once)
//! or terminates with a typed error (`Deadlock` when faults partition the
//! machine, `CycleLimit` as the outer budget) — it never silently drops or
//! duplicates work, and never wedges forever.

use std::sync::OnceLock;

use mcgpu_sim::{SimBuilder, SimError};
use mcgpu_trace::{generate, profiles, TraceParams, Workload};
use mcgpu_types::fault::{FaultEvent, FaultKind, FaultPlan};
use mcgpu_types::{ChipId, LlcOrgKind, MachineConfig};
use proptest::collection;
use proptest::prelude::*;
use proptest::strategy::{boxed, BoxedStrategy};

const CHIPS: usize = 4;

fn workload() -> &'static (MachineConfig, Workload, u64) {
    static WL: OnceLock<(MachineConfig, Workload, u64)> = OnceLock::new();
    WL.get_or_init(|| {
        let cfg = MachineConfig::experiment_baseline();
        let params = TraceParams {
            total_accesses: 12_000,
            ..TraceParams::quick()
        };
        let wl = generate(&cfg, &profiles::by_name("SN").unwrap(), &params);
        let stats = SimBuilder::new(cfg.clone())
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .expect("fault-free run completes");
        let work = stats.reads + stats.writes;
        (cfg, wl, work)
    })
}

/// Any single fault event that is valid for the 4-chip baseline machine.
fn fault_event() -> BoxedStrategy<FaultEvent> {
    let cfg = MachineConfig::experiment_baseline();
    let cycle = 0u64..40_000u64;
    boxed(prop_oneof![
        (cycle.clone(), 0usize..CHIPS, 0.05f64..0.95f64).prop_map(|(cy, p, factor)| FaultEvent {
            cycle: cy,
            kind: FaultKind::LinkDegrade {
                a: ChipId(p as u8),
                b: ChipId(((p + 1) % CHIPS) as u8),
                factor,
            },
        }),
        (cycle.clone(), 0usize..CHIPS).prop_map(|(cy, p)| FaultEvent {
            cycle: cy,
            kind: FaultKind::LinkFail {
                a: ChipId(p as u8),
                b: ChipId(((p + 1) % CHIPS) as u8),
            },
        }),
        (cycle.clone(), 0usize..CHIPS, 0.05f64..0.95f64).prop_map(|(cy, c, factor)| FaultEvent {
            cycle: cy,
            kind: FaultKind::DramThrottle {
                chip: ChipId(c as u8),
                factor,
            },
        }),
        (cycle.clone(), 0usize..CHIPS, 0usize..cfg.channels_per_chip).prop_map(
            |(cy, c, channel)| FaultEvent {
                cycle: cy,
                kind: FaultKind::DramFail {
                    chip: ChipId(c as u8),
                    channel,
                },
            }
        ),
        (cycle, 0usize..CHIPS, 0usize..cfg.slices_per_chip).prop_map(|(cy, c, slice)| {
            FaultEvent {
                cycle: cy,
                kind: FaultKind::LlcSliceDisable {
                    chip: ChipId(c as u8),
                    slice,
                },
            }
        }),
    ])
}

fn run_under_plan(org: LlcOrgKind, events: Vec<FaultEvent>) {
    let (cfg, wl, expected) = workload();
    let plan = FaultPlan::new(events);
    plan.validate(cfg)
        .expect("strategy only builds valid plans");
    let result = SimBuilder::new(cfg.clone())
        .organization(org)
        .fault_plan(plan)
        .watchdog_window(60_000)
        .max_cycles(5_000_000)
        .build()
        .expect("valid machine configuration")
        .run(wl);
    match result {
        Ok(stats) => assert_eq!(
            stats.reads + stats.writes,
            *expected,
            "completed run must retire every request exactly once"
        ),
        // A plan that partitions the ring legitimately wedges the machine;
        // the contract is a *typed, prompt* abort, not completion.
        Err(SimError::Deadlock { snapshot, .. }) => {
            assert!(
                snapshot.in_flight > 0 || snapshot.chips.iter().any(|c| c.total() > 0),
                "a deadlock report must locate stuck work"
            );
        }
        Err(SimError::CycleLimit { .. }) => {}
        Err(SimError::Config(e)) => panic!("validated plan rejected at run time: {e}"),
        // No deadline or cancel flag is set and the conservation audit
        // must hold under fault injection — any of these is a real
        // failure here.
        Err(
            e @ (SimError::Timeout { .. }
            | SimError::Cancelled { .. }
            | SimError::InvariantViolation { .. }
            | SimError::Checkpoint { .. }),
        ) => {
            panic!("unexpected abort: {e}")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn memory_side_conserves_packets_under_any_fault_plan(
        events in collection::vec(fault_event(), 0..6),
    ) {
        run_under_plan(LlcOrgKind::MemorySide, events);
    }

    #[test]
    fn sac_conserves_packets_under_any_fault_plan(
        events in collection::vec(fault_event(), 0..6),
    ) {
        run_under_plan(LlcOrgKind::Sac, events);
    }
}
