//! Property test: packet conservation under arbitrary fault plans.
//!
//! For any valid schedule of link failures/degradations, DRAM channel
//! faults and LLC slice disables, a run either completes with *exactly*
//! the fault-free work count (every injected request retires exactly once)
//! or terminates with a typed error (`Deadlock` when faults partition the
//! machine, `CycleLimit` as the outer budget) — it never silently drops or
//! duplicates work, and never wedges forever. The property is checked at
//! 4 and 8 chips on both the ring and the 2-D mesh, with link faults drawn
//! only from each topology's real edge list.

use std::sync::OnceLock;

use mcgpu_sim::{SimBuilder, SimError};
use mcgpu_trace::{generate, profiles, TraceParams, Workload};
use mcgpu_types::fault::{FaultEvent, FaultKind, FaultPlan};
use mcgpu_types::{ChipId, LlcOrgKind, MachineConfig, TopologyKind};
use proptest::collection;
use proptest::prelude::*;
use proptest::strategy::{boxed, BoxedStrategy};

/// The machines under test: chip count × topology.
const MACHINES: [(usize, TopologyKind); 4] = [
    (4, TopologyKind::Ring),
    (8, TopologyKind::Ring),
    (4, TopologyKind::Mesh2D),
    (8, TopologyKind::Mesh2D),
];

fn machine_config(m: usize) -> MachineConfig {
    let (chips, topology) = MACHINES[m];
    let mut cfg = MachineConfig::experiment_baseline();
    cfg.chips = chips;
    cfg.topology = topology;
    cfg.validate().expect("machine matrix entries are valid");
    cfg
}

fn workload(m: usize) -> &'static (MachineConfig, Workload, u64) {
    static WL: [OnceLock<(MachineConfig, Workload, u64)>; MACHINES.len()] =
        [const { OnceLock::new() }; MACHINES.len()];
    WL[m].get_or_init(|| {
        let cfg = machine_config(m);
        let params = TraceParams {
            total_accesses: 12_000,
            ..TraceParams::quick()
        };
        let wl = generate(&cfg, &profiles::by_name("SN").unwrap(), &params);
        let stats = SimBuilder::new(cfg.clone())
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .expect("fault-free run completes");
        let work = stats.reads + stats.writes;
        (cfg, wl, work)
    })
}

/// Any single fault event that is valid for machine `m` — link faults hit
/// only edges that exist in its topology.
fn fault_event(m: usize) -> BoxedStrategy<FaultEvent> {
    let cfg = machine_config(m);
    let chips = cfg.chips;
    let links = cfg.link_pairs();
    let n_links = links.len();
    let links_degrade = links.clone();
    let cycle = 0u64..40_000u64;
    boxed(prop_oneof![
        (cycle.clone(), 0usize..n_links, 0.05f64..0.95f64).prop_map(move |(cy, l, factor)| {
            let (a, b) = links_degrade[l];
            FaultEvent {
                cycle: cy,
                kind: FaultKind::LinkDegrade { a, b, factor },
            }
        }),
        (cycle.clone(), 0usize..n_links).prop_map(move |(cy, l)| {
            let (a, b) = links[l];
            FaultEvent {
                cycle: cy,
                kind: FaultKind::LinkFail { a, b },
            }
        }),
        (cycle.clone(), 0usize..chips, 0.05f64..0.95f64).prop_map(|(cy, c, factor)| FaultEvent {
            cycle: cy,
            kind: FaultKind::DramThrottle {
                chip: ChipId(c as u8),
                factor,
            },
        }),
        (cycle.clone(), 0usize..chips, 0usize..cfg.channels_per_chip).prop_map(
            |(cy, c, channel)| FaultEvent {
                cycle: cy,
                kind: FaultKind::DramFail {
                    chip: ChipId(c as u8),
                    channel,
                },
            }
        ),
        (cycle, 0usize..chips, 0usize..cfg.slices_per_chip).prop_map(|(cy, c, slice)| {
            FaultEvent {
                cycle: cy,
                kind: FaultKind::LlcSliceDisable {
                    chip: ChipId(c as u8),
                    slice,
                },
            }
        }),
    ])
}

/// A machine index paired with a fault plan valid for that machine.
fn machine_and_plan() -> impl Strategy<Value = (usize, Vec<FaultEvent>)> {
    (0usize..MACHINES.len()).prop_flat_map(|m| (Just(m), collection::vec(fault_event(m), 0..6)))
}

fn run_under_plan(org: LlcOrgKind, m: usize, events: Vec<FaultEvent>) {
    let (cfg, wl, expected) = workload(m);
    let plan = FaultPlan::new(events);
    plan.validate(cfg)
        .expect("strategy only builds valid plans");
    let result = SimBuilder::new(cfg.clone())
        .organization(org)
        .fault_plan(plan)
        .watchdog_window(60_000)
        .max_cycles(5_000_000)
        .build()
        .expect("valid machine configuration")
        .run(wl);
    match result {
        Ok(stats) => assert_eq!(
            stats.reads + stats.writes,
            *expected,
            "completed run must retire every request exactly once"
        ),
        // A plan that partitions the fabric legitimately wedges the
        // machine; the contract is a *typed, prompt* abort, not completion.
        Err(SimError::Deadlock { snapshot, .. }) => {
            assert!(
                snapshot.in_flight > 0 || snapshot.chips.iter().any(|c| c.total() > 0),
                "a deadlock report must locate stuck work"
            );
        }
        Err(SimError::CycleLimit { .. }) => {}
        Err(SimError::Config(e)) => panic!("validated plan rejected at run time: {e}"),
        // No deadline or cancel flag is set and the conservation audit
        // must hold under fault injection — any of these is a real
        // failure here.
        Err(
            e @ (SimError::Timeout { .. }
            | SimError::Cancelled { .. }
            | SimError::InvariantViolation { .. }
            | SimError::Checkpoint { .. }),
        ) => {
            panic!("unexpected abort: {e}")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn memory_side_conserves_packets_under_any_fault_plan(
        machine_and_plan in machine_and_plan(),
    ) {
        let (m, events) = machine_and_plan;
        run_under_plan(LlcOrgKind::MemorySide, m, events);
    }

    #[test]
    fn sac_conserves_packets_under_any_fault_plan(
        machine_and_plan in machine_and_plan(),
    ) {
        let (m, events) = machine_and_plan;
        run_under_plan(LlcOrgKind::Sac, m, events);
    }
}
