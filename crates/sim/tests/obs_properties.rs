//! Property-based tests for the observability histogram
//! ([`mcgpu_sim::LatencyHistogram`]): the merge algebra (associative,
//! commutative, identity), conservation of counts and sums under arbitrary
//! split/merge, percentile monotonicity, and the log2 bucket geometry at
//! the 0 and `u64::MAX` edges.

use mcgpu_sim::{LatencyHistogram, HIST_BUCKETS};
use proptest::collection::vec;
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Latencies spanning every bucket magnitude, not just small ints.
fn latency() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(u64::MAX),
        1u64..1024,
        any::<u64>(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_associative_and_commutative(
        a in vec(latency(), 0..64),
        b in vec(latency(), 0..64),
        c in vec(latency(), 0..64),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut right_tail = hb.clone();
        right_tail.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);

        // a ∪ b == b ∪ a
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // The empty histogram is the merge identity.
        let mut with_empty = ha.clone();
        with_empty.merge(&LatencyHistogram::new());
        prop_assert_eq!(&with_empty, &ha);
    }

    #[test]
    fn split_then_merge_conserves_everything(
        values in vec(latency(), 1..256),
        cut in any::<u64>(),
    ) {
        let whole = hist_of(&values);
        let cut = (cut as usize) % (values.len() + 1);
        let (lo, hi) = values.split_at(cut);
        let mut merged = hist_of(lo);
        merged.merge(&hist_of(hi));

        // Full structural equality: counts per bucket, count, sum, min, max.
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(merged.count(), values.len() as u64);
        prop_assert_eq!(
            merged.sum(),
            values.iter().map(|&v| u128::from(v)).sum::<u128>()
        );
        prop_assert_eq!(merged.min(), values.iter().copied().min().unwrap_or(0));
        prop_assert_eq!(merged.max(), values.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn percentiles_are_monotone_and_bound_the_data(
        values in vec(latency(), 1..256),
    ) {
        let h = hist_of(&values);
        let grid = [0.0, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0];
        for w in grid.windows(2) {
            prop_assert!(
                h.percentile(w[0]) <= h.percentile(w[1]),
                "p{} = {} > p{} = {}",
                w[0], h.percentile(w[0]), w[1], h.percentile(w[1])
            );
        }
        // Every percentile is a bucket upper bound, so it is >= the true
        // value at that rank; the lowest cannot undershoot the min's
        // bucket, the highest cannot undershoot the max itself.
        prop_assert!(h.percentile(0.0) >= h.min());
        prop_assert!(h.percentile(1.0) >= h.max());
        // Out-of-range p clamps rather than panicking.
        prop_assert_eq!(h.percentile(-1.0), h.percentile(0.0));
        prop_assert_eq!(h.percentile(2.0), h.percentile(1.0));
    }

    #[test]
    fn every_value_lands_in_a_bucket_that_contains_it(v in latency()) {
        let b = LatencyHistogram::bucket_of(v);
        prop_assert!(b < HIST_BUCKETS);
        let (lo, hi) = LatencyHistogram::bucket_bounds(b);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {b} = [{lo}, {hi}]");
    }
}

#[test]
fn zero_and_max_edges() {
    // 0 gets the dedicated first bucket; u64::MAX saturates the last.
    assert_eq!(LatencyHistogram::bucket_of(0), 0);
    assert_eq!(LatencyHistogram::bucket_bounds(0), (0, 0));
    assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
    assert_eq!(
        LatencyHistogram::bucket_bounds(HIST_BUCKETS - 1).1,
        u64::MAX
    );

    let mut h = LatencyHistogram::new();
    h.record(0);
    h.record(u64::MAX);
    h.record(u64::MAX);
    assert_eq!(h.count(), 3);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), u64::MAX);
    // The u128 sum does not wrap even with repeated u64::MAX samples.
    assert_eq!(h.sum(), 2 * u128::from(u64::MAX));
    assert_eq!(h.percentile(0.0), 0);
    assert_eq!(h.percentile(1.0), u64::MAX);
}
