//! Decision-table regression over the LLC-organization policy layer.
//!
//! Every (organization × coherence scheme) cell renders the policy's four
//! static decisions — route mode, remote fill action, kernel-boundary
//! action, and way split — as one row, and the whole table is compared
//! against a committed expectation. Any behavioral drift in a policy (or a
//! new organization forgetting a decision) shows up as a table diff, with
//! both tables printed in full.

use mcgpu_sim::org::{self, LlcOrgPolicy};
use mcgpu_types::{CoherenceKind, LlcOrgKind, MachineConfig};
use sac::SacConfig;

/// Render one policy's decision row under `coherence`.
fn row(policy: &dyn LlcOrgPolicy, coherence: CoherenceKind) -> String {
    let ways = match policy.way_split() {
        Some(w) => format!("{w} local"),
        None => "unpartitioned".to_string(),
    };
    format!(
        "{:12} {:9} route={:12} fill={:15} boundary={:21} ways={}",
        policy.kind().label(),
        format!("{coherence:?}").to_lowercase(),
        policy.route_mode().label(),
        format!("{:?}", policy.remote_fill_action()),
        policy.boundary_action(coherence).label(),
        ways,
    )
}

/// The committed decision table (16-way LLC, so the partitioned
/// organizations start at an 8-way local split). SAC rows reflect its
/// kernel-start memory-side mode; its SM-side decisions are exercised by
/// the behavioral tests in `organization_behaviors.rs`.
const EXPECTED: &[&str] = &[
    "memory-side  software  route=memory-side  fill=None            boundary=none                  ways=unpartitioned",
    "memory-side  hardware  route=memory-side  fill=None            boundary=drop-remote-replicas  ways=unpartitioned",
    "SM-side      software  route=sm-side      fill=FillLocalSlice  boundary=flush-all-dirty       ways=unpartitioned",
    "SM-side      hardware  route=sm-side      fill=FillLocalSlice  boundary=drop-remote-replicas  ways=unpartitioned",
    "static       software  route=tiered       fill=FillLocalSlice  boundary=flush-remote-dirty    ways=8 local",
    "static       hardware  route=tiered       fill=FillLocalSlice  boundary=drop-remote-replicas  ways=8 local",
    "dynamic      software  route=tiered       fill=FillLocalSlice  boundary=flush-remote-dirty    ways=8 local",
    "dynamic      hardware  route=tiered       fill=FillLocalSlice  boundary=drop-remote-replicas  ways=8 local",
    "SAC          software  route=memory-side  fill=None            boundary=none                  ways=unpartitioned",
    "SAC          hardware  route=memory-side  fill=None            boundary=drop-remote-replicas  ways=unpartitioned",
];

#[test]
fn decision_table_is_stable() {
    let cfg = MachineConfig::paper_baseline();
    assert_eq!(cfg.llc_assoc, 16, "the committed table assumes 16 ways");
    let mut actual = Vec::new();
    for kind in LlcOrgKind::ALL {
        for coherence in [CoherenceKind::Software, CoherenceKind::Hardware] {
            let mut cell = cfg.clone();
            cell.coherence = coherence;
            let policy = org::build_policy(kind, &cell, SacConfig::for_machine(&cell), 8192)
                .expect("every organization builds on the paper baseline");
            actual.push(row(policy.as_ref(), coherence));
        }
    }
    assert_eq!(
        actual,
        EXPECTED,
        "policy decision table drifted\n-- actual --\n{}\n-- expected --\n{}",
        actual.join("\n"),
        EXPECTED.join("\n"),
    );
}

#[test]
fn every_registered_org_has_table_rows() {
    for d in &org::REGISTRY {
        assert!(
            EXPECTED
                .iter()
                .filter(|r| r.starts_with(&format!("{:12} ", d.kind.label())))
                .count()
                == 2,
            "organization {} must have one row per coherence scheme",
            d.kind.label()
        );
    }
}
