//! Behavioural tests of the five LLC organizations at the simulator level.

use mcgpu_sim::SimBuilder;
use mcgpu_trace::{generate, profiles, TraceParams};
use mcgpu_types::{CoherenceKind, LlcOrgKind, MachineConfig};

fn cfg() -> MachineConfig {
    MachineConfig::experiment_baseline()
}

fn params(n: usize) -> TraceParams {
    TraceParams {
        total_accesses: n,
        ..TraceParams::quick()
    }
}

#[test]
fn static_llc_pins_half_capacity_per_pool() {
    // Under the static organization, a sharing-heavy workload must end up
    // with close to a 50/50 local/remote split — the way partition caps
    // both pools.
    let c = cfg();
    let wl = generate(&c, &profiles::by_name("CFD").unwrap(), &params(60_000));
    let s = SimBuilder::new(c)
        .organization(LlcOrgKind::StaticHalf)
        .build()
        .expect("valid machine configuration")
        .run(&wl)
        .unwrap();
    assert!(
        (0.35..=0.75).contains(&s.llc_local_fraction),
        "static split drifted to {}",
        s.llc_local_fraction
    );
}

#[test]
fn memory_side_never_caches_remote_data() {
    let c = cfg();
    for bench in ["SN", "SRAD", "NN"] {
        let wl = generate(&c, &profiles::by_name(bench).unwrap(), &params(40_000));
        let s = SimBuilder::new(c.clone())
            .organization(LlcOrgKind::MemorySide)
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .unwrap();
        assert!(
            s.llc_local_fraction > 0.999,
            "{bench}: {}",
            s.llc_local_fraction
        );
    }
}

#[test]
fn sac_pays_reconfiguration_overhead_only_when_switching() {
    let c = cfg();
    // SN switches to SM-side: drain + flush overhead accrues.
    let wl = generate(&c, &profiles::by_name("SN").unwrap(), &params(120_000));
    let switching = SimBuilder::new(c.clone())
        .organization(LlcOrgKind::Sac)
        .build()
        .expect("valid machine configuration")
        .run(&wl)
        .unwrap();
    assert!(switching
        .sac_history
        .iter()
        .any(|r| r.mode == sac::LlcMode::SmSide));
    assert!(switching.overhead_cycles > 0);

    // SRAD stays memory-side: only kernel-boundary costs remain, which are
    // much smaller than a reconfiguring run's.
    let wl = generate(&c, &profiles::by_name("SRAD").unwrap(), &params(120_000));
    let staying = SimBuilder::new(c)
        .organization(LlcOrgKind::Sac)
        .build()
        .expect("valid machine configuration")
        .run(&wl)
        .unwrap();
    assert!(staying
        .sac_history
        .iter()
        .all(|r| r.mode == sac::LlcMode::MemorySide));
    assert!(
        staying.overhead_cycles < switching.overhead_cycles,
        "no-switch overhead {} should undercut switch overhead {}",
        staying.overhead_cycles,
        switching.overhead_cycles
    );
}

#[test]
fn hardware_coherence_changes_traffic_not_work() {
    let c_sw = cfg();
    let mut c_hw = cfg();
    c_hw.coherence = CoherenceKind::Hardware;
    let wl = generate(&c_sw, &profiles::by_name("RN").unwrap(), &params(60_000));
    let sw = SimBuilder::new(c_sw)
        .organization(LlcOrgKind::SmSide)
        .build()
        .expect("valid machine configuration")
        .run(&wl)
        .unwrap();
    let hw = SimBuilder::new(c_hw)
        .organization(LlcOrgKind::SmSide)
        .build()
        .expect("valid machine configuration")
        .run(&wl)
        .unwrap();
    assert_eq!(sw.reads + sw.writes, hw.reads + hw.writes);
    // Hardware coherence avoids the bulk kernel-boundary flush.
    assert!(hw.overhead_cycles <= sw.overhead_cycles);
}

#[test]
fn observer_reports_monotone_progress() {
    let c = cfg();
    let wl = generate(&c, &profiles::by_name("BS").unwrap(), &params(40_000));
    let mut sim = SimBuilder::new(c)
        .organization(LlcOrgKind::MemorySide)
        .build()
        .expect("valid machine configuration");
    let mut samples = Vec::new();
    sim.run_observed(&wl, 2_000, |cycle, done, active| {
        samples.push((cycle, done, active));
    })
    .unwrap();
    assert!(!samples.is_empty());
    for w in samples.windows(2) {
        assert!(w[1].0 > w[0].0, "cycles increase");
        assert!(w[1].1 >= w[0].1, "completed work never decreases");
    }
    assert!(samples.iter().all(|&(_, _, a)| a <= 32));
}

#[test]
fn per_kernel_stats_cover_the_whole_run() {
    let c = cfg();
    let p = profiles::by_name("BFS").unwrap();
    let wl = generate(&c, &p, &params(60_000));
    let s = SimBuilder::new(c)
        .organization(LlcOrgKind::MemorySide)
        .build()
        .expect("valid machine configuration")
        .run(&wl)
        .unwrap();
    assert_eq!(s.kernels.len(), p.total_kernels());
    let kernel_cycles: u64 = s.kernels.iter().map(|k| k.cycles).sum();
    assert_eq!(kernel_cycles, s.cycles, "kernel cycles partition the run");
    let kernel_work: u64 = s.kernels.iter().map(|k| k.accesses).sum();
    assert_eq!(kernel_work, s.reads + s.writes);
}

#[test]
fn dram_traffic_scales_with_misses() {
    // The SM-side organization's higher miss rate must show up as more
    // DRAM reads on a thrashing workload.
    let c = cfg();
    let wl = generate(&c, &profiles::by_name("STEN").unwrap(), &params(80_000));
    let mem = SimBuilder::new(c.clone())
        .organization(LlcOrgKind::MemorySide)
        .build()
        .expect("valid machine configuration")
        .run(&wl)
        .unwrap();
    let sm = SimBuilder::new(c)
        .organization(LlcOrgKind::SmSide)
        .build()
        .expect("valid machine configuration")
        .run(&wl)
        .unwrap();
    assert!(sm.llc_miss_rate() > mem.llc_miss_rate());
    assert!(
        sm.dram_reads + sm.dram_writes > mem.dram_reads + mem.dram_writes,
        "more misses must cost more DRAM traffic"
    );
}

#[test]
fn sm_side_reduces_ring_bytes_per_access_for_false_sharing() {
    // BS is pure false sharing: under SM-side, repeated slot accesses are
    // served locally, so total ring bytes drop versus memory-side. Shrink
    // the input so the sliding hot window actually revisits lines — at full
    // scale the pool is streamed nearly touch-once and the two
    // organizations move the same data (no reuse for SM-side to capture).
    let c = cfg();
    let p = TraceParams {
        input_scale: 0.25,
        ..params(80_000)
    };
    let wl = generate(&c, &profiles::by_name("BS").unwrap(), &p);
    let mem = SimBuilder::new(c.clone())
        .organization(LlcOrgKind::MemorySide)
        .build()
        .expect("valid machine configuration")
        .run(&wl)
        .unwrap();
    let sm = SimBuilder::new(c)
        .organization(LlcOrgKind::SmSide)
        .build()
        .expect("valid machine configuration")
        .run(&wl)
        .unwrap();
    assert!(
        (sm.ring_bytes as f64) < 0.8 * mem.ring_bytes as f64,
        "SM-side should move clearly less data across the ring: {} vs {}",
        sm.ring_bytes,
        mem.ring_bytes
    );
}
