//! Fault-injection and watchdog integration tests: runs under injected
//! hardware degradation must either complete with all work conserved or
//! terminate promptly with a typed, diagnosable error — never spin to the
//! 50M-cycle budget.

use mcgpu_sim::{SimBuilder, SimError};
use mcgpu_trace::{generate, profiles, TraceParams};
use mcgpu_types::fault::{FaultEvent, FaultKind, FaultPlan};
use mcgpu_types::{ChipId, LlcOrgKind, MachineConfig};

fn params(n: usize) -> TraceParams {
    TraceParams {
        total_accesses: n,
        ..TraceParams::quick()
    }
}

fn link(cycle: u64, a: u8, b: u8) -> FaultEvent {
    FaultEvent {
        cycle,
        kind: FaultKind::LinkFail {
            a: ChipId(a),
            b: ChipId(b),
        },
    }
}

/// Baseline work for a workload: every organization completes the same
/// read+write count, so a fault-free run defines the conservation target.
fn fault_free_work(cfg: &MachineConfig, wl: &mcgpu_trace::Workload) -> u64 {
    let stats = SimBuilder::new(cfg.clone())
        .build()
        .expect("valid machine configuration")
        .run(wl)
        .expect("fault-free run completes");
    stats.reads + stats.writes
}

#[test]
fn wedged_machine_deadlocks_with_snapshot_far_before_max_cycles() {
    // Fail two opposite links of the 4-chip ring: chips {1,2} and {3,0}
    // are partitioned, remote requests can never be delivered, and no
    // reroute exists. The watchdog must abort with a diagnostic snapshot
    // long before the 50M-cycle budget.
    let cfg = MachineConfig::experiment_baseline();
    let wl = generate(&cfg, &profiles::by_name("SN").unwrap(), &params(40_000));
    let window = 25_000;
    let err = SimBuilder::new(cfg)
        .organization(LlcOrgKind::MemorySide)
        .fault_plan(FaultPlan::new(vec![link(2_000, 0, 1), link(2_000, 2, 3)]))
        .watchdog_window(window)
        .build()
        .expect("valid machine configuration")
        .run(&wl)
        .expect_err("a partitioned ring must deadlock");
    let SimError::Deadlock {
        cycle,
        window: w,
        snapshot,
    } = err
    else {
        panic!("expected Deadlock, got {err:?}");
    };
    assert_eq!(w, window);
    assert!(
        cycle < 1_000_000,
        "watchdog fired at {cycle}, far later than expected"
    );
    assert!(snapshot.in_flight > 0, "stuck work must be visible");
    assert!(
        snapshot.chips.iter().any(|c| c.total() > 0),
        "the snapshot must locate the stuck work: {snapshot}"
    );
    // The human-readable form names the window and some queue.
    let msg = SimError::Deadlock {
        cycle,
        window: w,
        snapshot,
    }
    .to_string();
    assert!(msg.contains("no forward progress"), "{msg}");
    assert!(msg.contains("chip0"), "{msg}");
}

#[test]
fn single_link_failure_reroutes_and_conserves_all_work() {
    // One failed link leaves the ring connected (the long way around):
    // every access must still complete, just slower.
    let cfg = MachineConfig::experiment_baseline();
    let wl = generate(&cfg, &profiles::by_name("SN").unwrap(), &params(40_000));
    let expected = fault_free_work(&cfg, &wl);
    let stats = SimBuilder::new(cfg)
        .organization(LlcOrgKind::MemorySide)
        .fault_plan(FaultPlan::new(vec![link(3_000, 1, 2)]))
        .build()
        .expect("valid machine configuration")
        .run(&wl)
        .expect("a singly-broken ring still completes");
    assert_eq!(stats.reads + stats.writes, expected);
}

#[test]
fn link_degradation_conserves_work_and_costs_cycles() {
    let cfg = MachineConfig::experiment_baseline();
    let wl = generate(&cfg, &profiles::by_name("SN").unwrap(), &params(40_000));
    let healthy = SimBuilder::new(cfg.clone())
        .build()
        .expect("valid machine configuration")
        .run(&wl)
        .expect("run");
    let degraded = SimBuilder::new(cfg)
        .fault_plan(FaultPlan::new(vec![FaultEvent {
            cycle: 1_000,
            kind: FaultKind::LinkDegrade {
                a: ChipId(0),
                b: ChipId(1),
                factor: 0.1,
            },
        }]))
        .build()
        .expect("valid machine configuration")
        .run(&wl)
        .expect("degraded run completes");
    assert_eq!(
        degraded.reads + degraded.writes,
        healthy.reads + healthy.writes
    );
    assert!(
        degraded.cycles > healthy.cycles,
        "losing 90% of a link's bandwidth must cost cycles \
         ({} vs {})",
        degraded.cycles,
        healthy.cycles
    );
}

#[test]
fn dram_faults_conserve_work() {
    let cfg = MachineConfig::experiment_baseline();
    let wl = generate(&cfg, &profiles::by_name("SN").unwrap(), &params(40_000));
    let expected = fault_free_work(&cfg, &wl);
    let stats = SimBuilder::new(cfg)
        .fault_plan(FaultPlan::new(vec![
            FaultEvent {
                cycle: 2_000,
                kind: FaultKind::DramFail {
                    chip: ChipId(1),
                    channel: 0,
                },
            },
            FaultEvent {
                cycle: 4_000,
                kind: FaultKind::DramThrottle {
                    chip: ChipId(2),
                    factor: 0.5,
                },
            },
        ]))
        .build()
        .expect("valid machine configuration")
        .run(&wl)
        .expect("DRAM-degraded run completes");
    assert_eq!(stats.reads + stats.writes, expected);
}

#[test]
fn disabled_slice_conserves_work_and_loses_hits() {
    let cfg = MachineConfig::experiment_baseline();
    let wl = generate(&cfg, &profiles::by_name("SN").unwrap(), &params(40_000));
    let healthy = SimBuilder::new(cfg.clone())
        .build()
        .expect("valid machine configuration")
        .run(&wl)
        .expect("run");
    // Disable every slice of chip 0 immediately: all its LLC traffic
    // misses through to DRAM from the very first access.
    let events = (0..cfg.slices_per_chip)
        .map(|s| FaultEvent {
            cycle: 0,
            kind: FaultKind::LlcSliceDisable {
                chip: ChipId(0),
                slice: s,
            },
        })
        .collect();
    let broken = SimBuilder::new(cfg)
        .fault_plan(FaultPlan::new(events))
        .build()
        .expect("valid machine configuration")
        .run(&wl)
        .expect("slice-disabled run completes");
    assert_eq!(broken.reads + broken.writes, healthy.reads + healthy.writes);
    assert!(
        broken.llc.hits < healthy.llc.hits,
        "a chip-wide LLC loss must cost hits ({} vs {})",
        broken.llc.hits,
        healthy.llc.hits
    );
}

#[test]
fn fault_plan_is_validated_at_build_time() {
    let cfg = MachineConfig::experiment_baseline();
    let bad = FaultPlan::new(vec![FaultEvent {
        cycle: 0,
        kind: FaultKind::LinkFail {
            a: ChipId(0),
            b: ChipId(2), // not adjacent on a 4-chip ring
        },
    }]);
    let err = SimBuilder::new(cfg)
        .fault_plan(bad)
        .build()
        .expect_err("non-adjacent link fault must be rejected");
    assert!(err.to_string().contains("fabric-adjacent"), "{err}");
}

#[test]
fn sac_survives_link_degradation() {
    // SAC under a severe mid-run link degradation: the run must complete
    // with all work conserved (graceful degradation may re-profile, but
    // must never wedge or lose requests).
    let cfg = MachineConfig::experiment_baseline();
    let wl = generate(&cfg, &profiles::by_name("BS").unwrap(), &params(40_000));
    let expected = {
        let stats = SimBuilder::new(cfg.clone())
            .organization(LlcOrgKind::Sac)
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .expect("fault-free SAC run");
        stats.reads + stats.writes
    };
    let stats = SimBuilder::new(cfg)
        .organization(LlcOrgKind::Sac)
        .fault_plan(FaultPlan::new(vec![FaultEvent {
            cycle: 5_000,
            kind: FaultKind::LinkDegrade {
                a: ChipId(2),
                b: ChipId(3),
                factor: 0.05,
            },
        }]))
        .build()
        .expect("valid machine configuration")
        .run(&wl)
        .expect("SAC completes under degradation");
    assert_eq!(stats.reads + stats.writes, expected);
}
