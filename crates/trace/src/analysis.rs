//! Trace analyses regenerating Table 4 and Fig. 11.

use crate::generate::Workload;
use crate::layout::SharingClass;
use mcgpu_types::MachineConfig;
use std::collections::{HashMap, HashSet};

/// Sharing-classified working-set sizes in MB (at machine scale).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SharingBreakdown {
    /// Distinct truly-shared megabytes.
    pub true_mb: f64,
    /// Distinct falsely-shared megabytes.
    pub false_mb: f64,
    /// Distinct non-shared megabytes.
    pub non_mb: f64,
}

impl SharingBreakdown {
    /// Total megabytes across all classes.
    pub fn total_mb(&self) -> f64 {
        self.true_mb + self.false_mb + self.non_mb
    }

    /// Scale to paper-equivalent megabytes (undo the machine's capacity
    /// scaling) for side-by-side comparison with the published figures.
    pub fn to_paper_scale(&self, cfg: &MachineConfig) -> SharingBreakdown {
        let s = cfg.scale.capacity as f64;
        SharingBreakdown {
            true_mb: self.true_mb * s,
            false_mb: self.false_mb * s,
            non_mb: self.non_mb * s,
        }
    }
}

/// A regenerated row of Table 4, measured from the trace itself (not from
/// the layout): a line is truly shared iff ≥ 2 chips accessed it, falsely
/// shared iff one chip accessed it but its page was accessed by ≥ 2 chips.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Benchmark name.
    pub name: String,
    /// CTA count (from the profile; CTAs are a scheduling concept the
    /// generator folds into per-chip stream segments).
    pub ctas: u32,
    /// Measured footprint in paper-equivalent MB.
    pub footprint_mb: f64,
    /// Measured truly-shared MB (paper equivalent).
    pub true_shared_mb: f64,
    /// Measured falsely-shared MB (paper equivalent).
    pub false_shared_mb: f64,
}

/// Measure the sharing character of a workload from its accesses (Table 4).
pub fn characterize(cfg: &MachineConfig, wl: &Workload) -> Table4Row {
    let lines_per_page = cfg.page_size / cfg.line_size;
    let mut line_sharers: HashMap<u64, u8> = HashMap::new();
    let mut page_sharers: HashMap<u64, u8> = HashMap::new();
    let clusters_per_chip = cfg.clusters_per_chip;
    for k in &wl.kernels {
        for (flat, stream) in k.per_cluster.iter().enumerate() {
            let chip = (flat / clusters_per_chip) as u8;
            for a in stream.iter() {
                let line = a.addr.line(cfg.line_size).index();
                *line_sharers.entry(line).or_default() |= 1 << chip;
                *page_sharers.entry(line / lines_per_page).or_default() |= 1 << chip;
            }
        }
    }
    let mut true_lines = 0u64;
    let mut false_lines = 0u64;
    for (&line, &mask) in &line_sharers {
        if mask.count_ones() >= 2 {
            true_lines += 1;
        } else if page_sharers[&(line / lines_per_page)].count_ones() >= 2 {
            false_lines += 1;
        }
    }
    let scale = cfg.scale.capacity as f64;
    let mb = |lines: u64| lines as f64 * cfg.line_size as f64 * scale / (1u64 << 20) as f64;
    Table4Row {
        name: wl.name.clone(),
        ctas: wl.profile.ctas,
        footprint_mb: page_sharers.len() as f64 * cfg.page_size as f64 * scale
            / (1u64 << 20) as f64,
        true_shared_mb: mb(true_lines),
        false_shared_mb: mb(false_lines),
    }
}

/// Fig. 11: for each window length (in accesses), the mean per-window
/// working set, broken down by sharing class.
///
/// The paper's x-axis is cycles; the harness converts using the measured
/// issue rate (accesses/cycle) of the simulated run.
pub fn working_set_curve(
    cfg: &MachineConfig,
    wl: &Workload,
    windows: &[usize],
) -> Vec<(usize, SharingBreakdown)> {
    let stream: Vec<u64> = wl
        .merged_stream()
        .map(|(_, a)| a.addr.line(cfg.line_size).index())
        .collect();
    let line_mb = cfg.line_size as f64 / (1u64 << 20) as f64;

    windows
        .iter()
        .map(|&w| {
            let w = w.max(1);
            let mut sums = SharingBreakdown::default();
            let mut num_windows = 0usize;
            for chunk in stream.chunks(w) {
                let mut seen: HashSet<u64> = HashSet::with_capacity(chunk.len());
                let mut counts = [0u64; 3];
                for &line in chunk {
                    if seen.insert(line) {
                        let class = wl.layout.classify(mcgpu_types::LineAddr(line));
                        let idx = match class {
                            SharingClass::TrueShared => 0,
                            SharingClass::FalseShared => 1,
                            SharingClass::NonShared => 2,
                        };
                        counts[idx] += 1;
                    }
                }
                sums.true_mb += counts[0] as f64 * line_mb;
                sums.false_mb += counts[1] as f64 * line_mb;
                sums.non_mb += counts[2] as f64 * line_mb;
                num_windows += 1;
            }
            if num_windows > 0 {
                sums.true_mb /= num_windows as f64;
                sums.false_mb /= num_windows as f64;
                sums.non_mb /= num_windows as f64;
            }
            (w, sums)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, TraceParams};
    use crate::profiles;

    fn cfg() -> MachineConfig {
        MachineConfig::experiment_baseline()
    }

    #[test]
    fn characterize_matches_table4_shape() {
        let c = cfg();
        let params = TraceParams {
            total_accesses: 150_000,
            ..TraceParams::quick()
        };
        // SRAD: large truly-shared pool streamed in full.
        let srad = characterize(
            &c,
            &generate(&c, &profiles::by_name("SRAD").unwrap(), &params),
        );
        // BS: no truly-shared data at all.
        let bs = characterize(
            &c,
            &generate(&c, &profiles::by_name("BS").unwrap(), &params),
        );
        assert!(
            srad.true_shared_mb > 10.0,
            "SRAD true-shared {:.1} MB",
            srad.true_shared_mb
        );
        assert!(
            bs.true_shared_mb < 2.0,
            "BS true-shared {}",
            bs.true_shared_mb
        );
        assert!(
            bs.false_shared_mb > 5.0,
            "BS false-shared {}",
            bs.false_shared_mb
        );
    }

    #[test]
    fn working_set_grows_with_window() {
        let c = cfg();
        let wl = generate(
            &c,
            &profiles::by_name("CFD").unwrap(),
            &TraceParams::quick(),
        );
        let curve = working_set_curve(&c, &wl, &[500, 5_000, 20_000]);
        assert_eq!(curve.len(), 3);
        assert!(curve[0].1.total_mb() < curve[1].1.total_mb());
        assert!(curve[1].1.total_mb() <= curve[2].1.total_mb() + 1e-9);
    }

    #[test]
    fn sp_has_smaller_true_window_than_mp() {
        let c = cfg();
        let params = TraceParams {
            total_accesses: 120_000,
            ..TraceParams::quick()
        };
        let rn = generate(&c, &profiles::by_name("RN").unwrap(), &params);
        let srad = generate(&c, &profiles::by_name("SRAD").unwrap(), &params);
        let w = 10_000;
        let rn_ws = &working_set_curve(&c, &rn, &[w])[0].1;
        let srad_ws = &working_set_curve(&c, &srad, &[w])[0].1;
        assert!(
            srad_ws.true_mb > 2.0 * rn_ws.true_mb,
            "SRAD window true WS {:.3} MB vs RN {:.3} MB",
            srad_ws.true_mb,
            rn_ws.true_mb
        );
    }

    #[test]
    fn paper_scale_multiplies_by_capacity() {
        let c = cfg();
        let b = SharingBreakdown {
            true_mb: 1.0,
            false_mb: 2.0,
            non_mb: 3.0,
        };
        let p = b.to_paper_scale(&c);
        assert_eq!(p.true_mb, c.scale.capacity as f64);
        assert_eq!(p.total_mb(), 6.0 * c.scale.capacity as f64);
    }
}
