//! The synthetic trace generator.

use crate::layout::AddressLayout;
use crate::profiles::{BenchmarkProfile, KernelBehavior};
use mcgpu_types::{AccessKind, ChipId, MachineConfig, MemAccess};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Parameters controlling trace volume and reproducibility.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceParams {
    /// Total memory accesses generated machine-wide for the whole workload.
    pub total_accesses: usize,
    /// RNG seed; identical parameters and seed give identical traces.
    pub seed: u64,
    /// Input-set scale (Fig. 13): multiplies all pool sizes. 1.0 is the
    /// default input.
    pub input_scale: f64,
}

impl TraceParams {
    /// The volume used by the figure harnesses.
    pub fn standard() -> Self {
        TraceParams {
            total_accesses: 600_000,
            seed: 0x5ac_c0de,
            input_scale: 1.0,
        }
    }

    /// A small volume for unit tests and doc examples.
    pub fn quick() -> Self {
        TraceParams {
            total_accesses: 40_000,
            seed: 0x5ac_c0de,
            input_scale: 1.0,
        }
    }

    /// Scale the input set (Fig. 13 sweeps ×8 … ÷32).
    pub fn with_input_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0);
        self.input_scale = scale;
        self
    }
}

impl Default for TraceParams {
    fn default() -> Self {
        Self::standard()
    }
}

/// The access streams of one kernel invocation.
#[derive(Debug, Clone)]
pub struct KernelTrace {
    /// Per-cluster access streams, indexed by flat cluster id
    /// (`chip * clusters_per_chip + cluster`). The streams are shared
    /// (`Arc`) so loading a kernel into a simulator — or into several
    /// simulators sweeping organizations in parallel — never copies the
    /// access data.
    pub per_cluster: Vec<Arc<[MemAccess]>>,
    /// The behaviour this kernel was generated from (the simulator reads
    /// `compute_gap` from here).
    pub behavior: KernelBehavior,
}

impl KernelTrace {
    /// Total accesses in this kernel across all clusters.
    pub fn len(&self) -> usize {
        self.per_cluster.iter().map(|v| v.len()).sum()
    }

    /// Whether the kernel performs no accesses.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A complete generated workload: kernel sequence plus its address layout.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name.
    pub name: String,
    /// The page-aligned pool layout the addresses were drawn from.
    pub layout: AddressLayout,
    /// Kernel invocations in execution order.
    pub kernels: Vec<KernelTrace>,
    /// The profile this workload was generated from.
    pub profile: BenchmarkProfile,
}

impl Workload {
    /// Total accesses across all kernels.
    pub fn total_accesses(&self) -> usize {
        self.kernels.iter().map(|k| k.len()).sum()
    }

    /// Interleave all clusters' streams round-robin into one machine-order
    /// stream (approximates temporal order): kernel by kernel, one access
    /// per cluster per step. Used by the working-set analysis.
    pub fn merged_stream(&self) -> impl Iterator<Item = (usize, MemAccess)> + '_ {
        self.kernels.iter().flat_map(MergedKernel::new)
    }
}

/// Round-robin interleaver over one kernel's per-cluster streams, yielding
/// `(flat_cluster, access)` pairs.
struct MergedKernel<'a> {
    kernel: &'a KernelTrace,
    step: usize,
    cluster: usize,
    remaining: usize,
}

impl<'a> MergedKernel<'a> {
    fn new(kernel: &'a KernelTrace) -> Self {
        MergedKernel {
            kernel,
            step: 0,
            cluster: 0,
            remaining: kernel.len(),
        }
    }
}

impl Iterator for MergedKernel<'_> {
    type Item = (usize, MemAccess);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        loop {
            let c = self.cluster;
            let s = self.step;
            self.cluster += 1;
            if self.cluster == self.kernel.per_cluster.len() {
                self.cluster = 0;
                self.step += 1;
            }
            if let Some(&a) = self.kernel.per_cluster[c].get(s) {
                self.remaining -= 1;
                return Some((c, a));
            }
        }
    }
}

/// Streaming state over one pool with block-level reuse: visit a block of
/// [`STREAM_BLOCK`] lines `rounds` times, then advance to the next block.
#[derive(Debug, Clone)]
struct StreamState {
    pos: u64,
    offset: u64,
    round: u32,
    rounds: u32,
    span: u64,
}

/// Lines per stream block. Revisiting a block gives controllable L1 and LLC
/// temporal locality.
const STREAM_BLOCK: u64 = 128;

impl StreamState {
    fn new(start: u64, span: u64, rounds: u32) -> Self {
        StreamState {
            pos: start,
            offset: 0,
            round: 0,
            rounds: rounds.max(1),
            span: span.max(1),
        }
    }

    fn next_index(&mut self) -> u64 {
        let idx = self.pos + self.offset;
        self.offset += 1;
        if self.offset == STREAM_BLOCK {
            self.offset = 0;
            self.round += 1;
            if self.round == self.rounds {
                self.round = 0;
                self.pos = (self.pos + STREAM_BLOCK) % self.span;
            }
        }
        idx % self.span
    }
}

/// Generate the workload for `profile` on machine `cfg`.
///
/// Pool sizes come from Table 4, divided by the machine's capacity scale and
/// multiplied by `params.input_scale`; access behaviour comes from the
/// profile's [`KernelBehavior`]s. The generation is deterministic in
/// `params.seed`.
pub fn generate(cfg: &MachineConfig, profile: &BenchmarkProfile, params: &TraceParams) -> Workload {
    let cap_scale = cfg.scale.capacity as f64;
    let mb =
        |paper_mb: f64| ((paper_mb * params.input_scale / cap_scale) * (1u64 << 20) as f64) as u64;
    let layout = AddressLayout::new(
        cfg,
        mb(profile.non_shared_mb()),
        mb(profile.false_shared_mb),
        mb(profile.true_shared_mb),
    );

    let clusters = cfg.chips * cfg.clusters_per_chip;
    let sequences = profile.repeats as usize;
    let accesses_per_sequence = params.total_accesses / sequences;

    let mut kernels = Vec::with_capacity(profile.total_kernels());
    for rep in 0..sequences {
        for (ki, behavior) in profile.kernels.iter().enumerate() {
            let kernel_total = (accesses_per_sequence as f64 * behavior.weight) as usize;
            let per_cluster_n = (kernel_total / clusters).max(1);
            let mut per_cluster = Vec::with_capacity(clusters);
            for chip in 0..cfg.chips {
                for cl in 0..cfg.clusters_per_chip {
                    per_cluster.push(Arc::<[MemAccess]>::from(generate_cluster_stream(
                        cfg,
                        &layout,
                        behavior,
                        ChipId(chip as u8),
                        cl,
                        per_cluster_n,
                        params
                            .seed
                            .wrapping_add((rep * 31 + ki) as u64)
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            .wrapping_add((chip * cfg.clusters_per_chip + cl) as u64),
                    )));
                }
            }
            kernels.push(KernelTrace {
                per_cluster,
                behavior: *behavior,
            });
        }
    }

    Workload {
        name: profile.name.to_string(),
        layout,
        kernels,
        profile: profile.clone(),
    }
}

fn generate_cluster_stream(
    cfg: &MachineConfig,
    layout: &AddressLayout,
    b: &KernelBehavior,
    chip: ChipId,
    cluster: usize,
    n: usize,
    seed: u64,
) -> Vec<MemAccess> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let clusters_per_chip = cfg.clusters_per_chip as u64;

    // Distributed CTA scheduling (§4): contiguous CTA ranges per chip, so a
    // chip's clusters jointly stream over the chip's non-shared and
    // false-shared pools in disjoint segments.
    let non_span = layout.non_lines_per_chip();
    let non_seg = (non_span / clusters_per_chip).max(STREAM_BLOCK);
    let mut non = StreamState::new(cluster as u64 * non_seg, non_span, b.block_rounds);

    // All clusters of a chip work on the same sliding window of the chip's
    // falsely-shared slots (inter-CTA shared structures): the first cluster
    // to touch a line misses, its siblings then hit the LLC — locally under
    // an SM-side organization, across the ring under a memory-side one,
    // which is exactly the Fig. 5b false-sharing asymmetry.
    let false_span = layout.false_slots_per_chip();
    let false_hot = ((false_span as f64 * b.true_hot_frac) as u64).clamp(1, false_span);

    // The truly-shared pool is divided into one segment per chip; the
    // segment's chip accesses it most (and first-touches it, becoming its
    // home), while other chips read it with probability `true_remote_frac`.
    // Within a segment, a hot window of `true_hot_frac` of the segment
    // slides once across it during the kernel; the window position is a
    // function of kernel progress, so clusters (bounded in drift by the CTA
    // wave scheduler) access the same window concurrently.
    let chips = cfg.chips as u64;
    let true_lines = layout.true_lines();
    let seg = (true_lines / chips).max(1);
    let hot = ((seg as f64 * b.true_hot_frac) as u64).clamp(1, seg);

    let mut out = Vec::with_capacity(n);
    for step in 0..n {
        let r: f64 = rng.gen();
        let addr = if r < b.f_true && true_lines > 0 {
            let owner = if chips > 1 && rng.gen::<f64>() < b.true_remote_frac {
                let mut o = rng.gen_range(0..chips - 1);
                if o >= chip.index() as u64 {
                    o += 1;
                }
                o
            } else {
                chip.index() as u64
            };
            let progress = step as f64 / n as f64;
            let wstart = (progress * seg as f64) as u64;
            let idx = owner * seg + (wstart + rng.gen_range(0..hot)) % seg;
            layout.true_shared_addr(idx)
        } else if r < b.f_true + b.f_false {
            let progress = step as f64 / n as f64;
            let start = (progress * false_span as f64) as u64;
            let idx = (start + rng.gen_range(0..false_hot)) % false_span;
            layout.false_shared_addr(chip, idx)
        } else {
            layout.non_shared_addr(chip, non.next_index())
        };
        let kind = if rng.gen::<f64>() < b.write_frac {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        out.push(MemAccess { addr, kind });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use mcgpu_types::LineAddr;

    fn cfg() -> MachineConfig {
        MachineConfig::experiment_baseline()
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p = profiles::by_name("RN").unwrap();
        let a = generate(&cfg(), &p, &TraceParams::quick());
        let b = generate(&cfg(), &p, &TraceParams::quick());
        assert_eq!(a.total_accesses(), b.total_accesses());
        assert_eq!(a.kernels[0].per_cluster[3], b.kernels[0].per_cluster[3]);
    }

    #[test]
    fn different_seeds_differ() {
        let p = profiles::by_name("RN").unwrap();
        let a = generate(&cfg(), &p, &TraceParams::quick());
        let mut params = TraceParams::quick();
        params.seed ^= 0xdead_beef;
        let b = generate(&cfg(), &p, &params);
        assert_ne!(a.kernels[0].per_cluster[0], b.kernels[0].per_cluster[0]);
    }

    #[test]
    fn volume_is_close_to_requested() {
        let p = profiles::by_name("CFD").unwrap();
        let params = TraceParams::quick();
        let wl = generate(&cfg(), &p, &params);
        let total = wl.total_accesses();
        assert!(
            total as f64 > params.total_accesses as f64 * 0.7
                && total as f64 <= params.total_accesses as f64 * 1.3,
            "total {total}"
        );
        assert_eq!(wl.kernels.len(), p.total_kernels());
    }

    #[test]
    fn bs_never_touches_true_pool() {
        let c = cfg();
        let p = profiles::by_name("BS").unwrap();
        let wl = generate(&c, &p, &TraceParams::quick());
        for k in &wl.kernels {
            for cl in &k.per_cluster {
                for a in cl.iter() {
                    let class = wl.layout.classify(a.addr.line(c.line_size));
                    assert_ne!(class, crate::SharingClass::TrueShared);
                }
            }
        }
    }

    #[test]
    fn non_shared_streams_stay_on_own_chip() {
        let c = cfg();
        let p = profiles::by_name("BP").unwrap(); // f_false == 0
        let wl = generate(&c, &p, &TraceParams::quick());
        // Collect the non-shared lines touched by each chip; they must be
        // disjoint across chips.
        let mut per_chip: Vec<std::collections::HashSet<u64>> = vec![Default::default(); 4];
        for k in &wl.kernels {
            for (flat, cl) in k.per_cluster.iter().enumerate() {
                let chip = flat / c.clusters_per_chip;
                for a in cl.iter() {
                    let line = a.addr.line(c.line_size);
                    if wl.layout.classify(line) == crate::SharingClass::NonShared {
                        per_chip[chip].insert(line.index());
                    }
                }
            }
        }
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(per_chip[i].is_disjoint(&per_chip[j]), "chips {i} and {j}");
            }
        }
    }

    #[test]
    fn true_pool_is_shared_by_all_chips() {
        let c = cfg();
        let p = profiles::by_name("SRAD").unwrap(); // f_true = 0.5, hot = 1.0
                                                    // Enough volume that each truly-shared line is touched several
                                                    // times (the pool has ~15k lines).
        let params = TraceParams {
            total_accesses: 250_000,
            ..TraceParams::quick()
        };
        let wl = generate(&c, &p, &params);
        let mut sharers: std::collections::HashMap<u64, u8> = Default::default();
        for k in &wl.kernels {
            for (flat, cl) in k.per_cluster.iter().enumerate() {
                let chip = (flat / c.clusters_per_chip) as u8;
                for a in cl.iter() {
                    let line = a.addr.line(c.line_size);
                    if wl.layout.classify(line) == crate::SharingClass::TrueShared {
                        *sharers.entry(line.index()).or_default() |= 1 << chip;
                    }
                }
            }
        }
        let multi = sharers.values().filter(|&&m| m.count_ones() >= 2).count();
        assert!(
            multi as f64 > sharers.len() as f64 * 0.5,
            "most truly-shared lines are touched by several chips ({multi}/{})",
            sharers.len()
        );
    }

    #[test]
    fn input_scale_grows_footprint() {
        let c = cfg();
        let p = profiles::by_name("RN").unwrap();
        let small = generate(&c, &p, &TraceParams::quick().with_input_scale(0.25));
        let big = generate(&c, &p, &TraceParams::quick().with_input_scale(4.0));
        assert!(big.layout.true_bytes() > 8 * small.layout.true_bytes());
    }

    #[test]
    fn merged_stream_covers_everything() {
        let p = profiles::by_name("SN").unwrap();
        let wl = generate(&cfg(), &p, &TraceParams::quick());
        assert_eq!(wl.merged_stream().count(), wl.total_accesses());
    }

    #[test]
    fn writes_roughly_match_fraction() {
        let c = cfg();
        let p = profiles::by_name("SRAD").unwrap();
        let wl = generate(&c, &p, &TraceParams::quick());
        let (mut w, mut t) = (0usize, 0usize);
        for (_, a) in wl.merged_stream() {
            t += 1;
            if a.kind.is_write() {
                w += 1;
            }
        }
        let expected = p.kernels[0].write_frac;
        let frac = w as f64 / t as f64;
        assert!(
            (frac - expected).abs() < 0.05,
            "write frac {frac} vs {expected}"
        );
        let _ = LineAddr(0); // silence unused import in some cfgs
    }
}
