//! Address-space layout of a synthetic workload.
//!
//! The virtual address space of a generated workload is carved into three
//! page-aligned pools mirroring §2.1's sharing taxonomy:
//!
//! * **non-shared** — one contiguous region per chip, only ever accessed by
//!   that chip;
//! * **falsely shared** — pages whose 32 lines are statically divided among
//!   the chips (chip `c` uses slot `c`), so different chips touch different
//!   lines of the same page;
//! * **truly shared** — pages whose lines are accessed by every chip.

use mcgpu_types::{Address, ChipId, LineAddr, MachineConfig, PageAddr};

/// Sharing class of a cache line, by construction of the layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SharingClass {
    /// Accessed by a single chip; no other chip touches its page.
    NonShared,
    /// Accessed by a single chip, but other lines of its page belong to
    /// other chips.
    FalseShared,
    /// Accessed by multiple chips.
    TrueShared,
}

impl SharingClass {
    /// Label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            SharingClass::NonShared => "non-shared",
            SharingClass::FalseShared => "false-shared",
            SharingClass::TrueShared => "true-shared",
        }
    }
}

/// Page-aligned partition of the address space into the three pools.
///
/// Layout (page indices):
/// `[0, non_pages*chips)` non-shared (chip c owns an interleaved share),
/// `[non_end, non_end + false_pages)` falsely shared,
/// `[false_end, false_end + true_pages)` truly shared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressLayout {
    chips: usize,
    line_size: u64,
    page_size: u64,
    lines_per_page: u64,
    /// Non-shared pages owned by EACH chip.
    non_pages_per_chip: u64,
    false_pages: u64,
    true_pages: u64,
}

impl AddressLayout {
    /// Build a layout with the given pool sizes in bytes (rounded up to
    /// whole pages; every pool gets at least one page so indices stay
    /// valid).
    pub fn new(cfg: &MachineConfig, non_bytes: u64, false_bytes: u64, true_bytes: u64) -> Self {
        let ps = cfg.page_size;
        let pages = |bytes: u64| bytes.div_ceil(ps).max(1);
        AddressLayout {
            chips: cfg.chips,
            line_size: cfg.line_size,
            page_size: ps,
            lines_per_page: ps / cfg.line_size,
            non_pages_per_chip: pages(non_bytes / cfg.chips as u64),
            false_pages: pages(false_bytes),
            true_pages: pages(true_bytes),
        }
    }

    /// Number of chips this layout was built for.
    pub fn chips(&self) -> usize {
        self.chips
    }

    /// Total footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        (self.non_pages_per_chip * self.chips as u64 + self.false_pages + self.true_pages)
            * self.page_size
    }

    /// Truly-shared pool size in bytes.
    pub fn true_bytes(&self) -> u64 {
        self.true_pages * self.page_size
    }

    /// Falsely-shared pool size in bytes.
    pub fn false_bytes(&self) -> u64 {
        self.false_pages * self.page_size
    }

    /// Number of truly-shared lines.
    pub fn true_lines(&self) -> u64 {
        self.true_pages * self.lines_per_page
    }

    /// Number of falsely-shared line *slots* available to one chip.
    pub fn false_slots_per_chip(&self) -> u64 {
        self.false_pages * (self.lines_per_page / self.chips as u64).max(1)
    }

    /// Number of non-shared lines owned by one chip.
    pub fn non_lines_per_chip(&self) -> u64 {
        self.non_pages_per_chip * self.lines_per_page
    }

    fn false_base_page(&self) -> u64 {
        self.non_pages_per_chip * self.chips as u64
    }

    fn true_base_page(&self) -> u64 {
        self.false_base_page() + self.false_pages
    }

    /// Byte address of non-shared line number `idx` of `chip` (wraps
    /// around the chip's pool).
    pub fn non_shared_addr(&self, chip: ChipId, idx: u64) -> Address {
        let lines = self.non_lines_per_chip();
        let idx = idx % lines;
        let page = chip.index() as u64 * self.non_pages_per_chip + idx / self.lines_per_page;
        let line_in_page = idx % self.lines_per_page;
        Address::new((page * self.lines_per_page + line_in_page) * self.line_size)
    }

    /// Byte address of falsely-shared slot `idx` of `chip`: page
    /// `idx / slots_per_page`, line `chip * slots_per_page + offset`.
    pub fn false_shared_addr(&self, chip: ChipId, idx: u64) -> Address {
        let slots_per_page = (self.lines_per_page / self.chips as u64).max(1);
        let idx = idx % self.false_slots_per_chip();
        let page = self.false_base_page() + idx / slots_per_page;
        let line_in_page =
            (chip.index() as u64 * slots_per_page + idx % slots_per_page) % self.lines_per_page;
        Address::new((page * self.lines_per_page + line_in_page) * self.line_size)
    }

    /// Byte address of truly-shared line `idx` (same for every chip; wraps).
    pub fn true_shared_addr(&self, idx: u64) -> Address {
        let idx = idx % self.true_lines();
        let page = self.true_base_page() + idx / self.lines_per_page;
        let line_in_page = idx % self.lines_per_page;
        Address::new((page * self.lines_per_page + line_in_page) * self.line_size)
    }

    /// The chip that naturally first-touches `page`: the owner for
    /// non-shared pages, the segment owner for truly-shared pages, and a
    /// round-robin winner for falsely-shared pages (all chips race to touch
    /// those). Used to pre-seed the page table, modelling the host-to-device
    /// placement that precedes kernel 0 — and making page placement
    /// identical across LLC organizations.
    ///
    /// Returns `None` for pages outside the layout's footprint.
    pub fn natural_home(&self, page: PageAddr) -> Option<ChipId> {
        let p = page.index();
        if p < self.false_base_page() {
            Some(ChipId((p / self.non_pages_per_chip) as u8))
        } else if p < self.true_base_page() {
            Some(ChipId(
                ((p - self.false_base_page()) % self.chips as u64) as u8,
            ))
        } else if p < self.true_base_page() + self.true_pages {
            let seg = (self.true_pages / self.chips as u64).max(1);
            let owner = ((p - self.true_base_page()) / seg).min(self.chips as u64 - 1);
            Some(ChipId(owner as u8))
        } else {
            None
        }
    }

    /// Total pages in the layout's footprint.
    pub fn total_pages(&self) -> u64 {
        self.footprint_bytes() / self.page_size
    }

    /// The sharing class of `line`, by construction.
    pub fn classify(&self, line: LineAddr) -> SharingClass {
        let page = line.index() / self.lines_per_page;
        if page < self.false_base_page() {
            SharingClass::NonShared
        } else if page < self.true_base_page() {
            SharingClass::FalseShared
        } else {
            SharingClass::TrueShared
        }
    }

    /// The sharing class of the page `page`.
    pub fn classify_page(&self, page: PageAddr) -> SharingClass {
        self.classify(LineAddr(page.index() * self.lines_per_page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::experiment_baseline()
    }

    fn layout() -> AddressLayout {
        // 1 MiB non-shared, 256 KiB false, 128 KiB true.
        AddressLayout::new(&cfg(), 1 << 20, 256 << 10, 128 << 10)
    }

    #[test]
    fn pools_do_not_overlap() {
        let l = layout();
        let line = |a: Address| a.line(128);
        // Non-shared addresses of different chips never collide and classify
        // as NonShared.
        let a0 = l.non_shared_addr(ChipId(0), 5);
        let a1 = l.non_shared_addr(ChipId(1), 5);
        assert_ne!(a0, a1);
        assert_eq!(l.classify(line(a0)), SharingClass::NonShared);

        let f = l.false_shared_addr(ChipId(2), 9);
        assert_eq!(l.classify(line(f)), SharingClass::FalseShared);

        let t = l.true_shared_addr(3);
        assert_eq!(l.classify(line(t)), SharingClass::TrueShared);
    }

    #[test]
    fn false_shared_slots_share_pages_but_not_lines() {
        let l = layout();
        let chips: Vec<Address> = (0..4).map(|c| l.false_shared_addr(ChipId(c), 0)).collect();
        let pages: std::collections::HashSet<u64> =
            chips.iter().map(|a| a.page(4096).index()).collect();
        assert_eq!(pages.len(), 1, "slot 0 of all chips is in the same page");
        let lines: std::collections::HashSet<u64> =
            chips.iter().map(|a| a.line(128).index()).collect();
        assert_eq!(lines.len(), 4, "but on distinct lines");
    }

    #[test]
    fn true_shared_is_identical_across_chips() {
        let l = layout();
        // All chips compute the same address for the same index.
        assert_eq!(l.true_shared_addr(17), l.true_shared_addr(17));
    }

    #[test]
    fn indices_wrap() {
        let l = layout();
        let n = l.true_lines();
        assert_eq!(l.true_shared_addr(0), l.true_shared_addr(n));
        let s = l.false_slots_per_chip();
        assert_eq!(
            l.false_shared_addr(ChipId(1), 1),
            l.false_shared_addr(ChipId(1), s + 1)
        );
    }

    #[test]
    fn footprint_accounts_all_pools() {
        let l = layout();
        let expected =
            (l.non_lines_per_chip() * 4 / 32 + l.false_bytes() / 4096 + l.true_bytes() / 4096)
                * 4096;
        assert_eq!(l.footprint_bytes(), expected);
    }

    #[test]
    fn natural_home_matches_pool_structure() {
        let l = layout();
        // Non-shared pages belong to their owner chip.
        let a = l.non_shared_addr(ChipId(2), 0);
        assert_eq!(l.natural_home(a.page(4096)), Some(ChipId(2)));
        // Truly-shared pages belong to their segment owner; segment 0 is
        // chip 0's.
        let t = l.true_shared_addr(0);
        assert_eq!(l.natural_home(t.page(4096)), Some(ChipId(0)));
        // Out-of-footprint pages are unmapped.
        assert_eq!(l.natural_home(PageAddr(1 << 40)), None);
        // Every in-footprint page has a home.
        for p in 0..l.total_pages() {
            assert!(l.natural_home(PageAddr(p)).is_some(), "page {p}");
        }
    }

    #[test]
    fn tiny_pools_get_one_page() {
        let l = AddressLayout::new(&cfg(), 0, 0, 0);
        assert!(l.true_lines() > 0);
        assert!(l.false_slots_per_chip() > 0);
        assert!(l.non_lines_per_chip() > 0);
    }
}
