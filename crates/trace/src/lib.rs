//! Synthetic GPU workload generation reproducing the SAC paper's benchmark
//! sharing characteristics.
//!
//! The paper evaluates 16 CUDA benchmarks (Table 4) whose binaries and
//! inputs we cannot run. What decides whether a workload prefers a
//! memory-side or an SM-side LLC, however, is *only* its inter-chip sharing
//! structure (§2.3, §5.3):
//!
//! * how many bytes are **truly shared** (same line accessed by several
//!   chips), **falsely shared** (different lines of one page accessed by
//!   different chips) and **non-shared**,
//! * how large the *active* truly-shared working set is per time window
//!   (Fig. 11) relative to LLC capacity, and
//! * the access intensity (bandwidth demand) and write fraction.
//!
//! This crate generates per-SM-cluster access streams with exactly those
//! properties, parameterized per benchmark from Table 4 ([`profiles`]), and
//! provides the analyses that regenerate Table 4 and Fig. 11 from the
//! generated traces ([`analysis`]).
//!
//! # Example
//!
//! ```
//! use mcgpu_trace::{profiles, TraceParams, generate};
//! use mcgpu_types::MachineConfig;
//!
//! let cfg = MachineConfig::experiment_baseline();
//! let bfs = profiles::by_name("BFS").unwrap();
//! let wl = generate(&cfg, &bfs, &TraceParams::quick());
//! assert!(!wl.kernels.is_empty());
//! ```

pub mod analysis;
pub mod generate;
pub mod layout;
pub mod profiles;

pub use analysis::{characterize, working_set_curve, SharingBreakdown, Table4Row};
pub use generate::{generate, KernelTrace, TraceParams, Workload};
pub use layout::{AddressLayout, SharingClass};
pub use profiles::{BenchmarkProfile, KernelBehavior, Preference};
