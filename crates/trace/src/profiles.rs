//! The 16 benchmark profiles of Table 4.
//!
//! Each profile records the *measured* characteristics the paper publishes
//! (suite, CTA count, footprint, truly- and falsely-shared megabytes) plus
//! the behavioural knobs our generator needs to reproduce the benchmark's
//! sharing dynamics: what fraction of accesses hit each pool, how large the
//! *active* truly-shared window is (Fig. 11's per-window working sets), L1
//! locality, write fraction, compute intensity, and the kernel sequence
//! (BFS alternates a memory-side-preferred and an SM-side-preferred kernel,
//! Fig. 12).

/// Which LLC organization the benchmark prefers in the paper (Table 4 split:
/// top half SM-side, bottom half memory-side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preference {
    /// SM-side preferred ("SP" in Fig. 1).
    SmSide,
    /// Memory-side preferred ("MP" in Fig. 1).
    MemorySide,
}

impl Preference {
    /// Label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            Preference::SmSide => "SP",
            Preference::MemorySide => "MP",
        }
    }
}

/// Behaviour of one kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelBehavior {
    /// Share of the workload's total accesses executed by this kernel.
    pub weight: f64,
    /// Fraction of accesses to the truly-shared pool.
    pub f_true: f64,
    /// Fraction of accesses to the falsely-shared pool (the rest go to the
    /// chip's non-shared stream).
    pub f_false: f64,
    /// Fraction of truly-shared accesses that target *another chip's*
    /// segment of the pool. The truly-shared pool is divided into per-chip
    /// segments (the segment's chip first-touches it, becoming its home);
    /// every segment is also read by other chips, which is what makes the
    /// lines truly shared. SP benchmarks share intensively (high values);
    /// MP benchmarks mostly work on their own halo region (low values), so
    /// their request mix stays local-dominated as in the paper's Fig. 10.
    pub true_remote_frac: f64,
    /// Fraction of a truly-shared segment that is *hot* at any instant. The
    /// hot window slides over the segment during the kernel, so small
    /// values give a small per-time-window truly-shared working set (SP
    /// benchmarks); 1.0 means the whole segment is accessed uniformly (MP
    /// streaming).
    pub true_hot_frac: f64,
    /// Times a stream block is revisited before advancing (L1 locality).
    pub block_rounds: u32,
    /// Fraction of accesses that are writes.
    pub write_frac: f64,
    /// Compute cycles between successive memory instructions per cluster.
    pub compute_gap: u32,
}

impl KernelBehavior {
    /// Fraction of accesses to the non-shared stream.
    pub fn f_non(&self) -> f64 {
        (1.0 - self.f_true - self.f_false).max(0.0)
    }
}

/// A Table 4 benchmark with its generator parameterization.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name as in Table 4.
    pub name: &'static str,
    /// Originating suite.
    pub suite: &'static str,
    /// Number of CTAs (Table 4).
    pub ctas: u32,
    /// Total footprint in MB at paper scale (Table 4).
    pub footprint_mb: f64,
    /// Truly-shared data in MB at paper scale (Table 4).
    pub true_shared_mb: f64,
    /// Falsely-shared data in MB at paper scale (Table 4).
    pub false_shared_mb: f64,
    /// Published preference (top/bottom half of Table 4).
    pub preference: Preference,
    /// Kernel sequence, replayed `repeats` times.
    pub kernels: Vec<KernelBehavior>,
    /// How many times the kernel sequence runs.
    pub repeats: u32,
}

impl BenchmarkProfile {
    /// Non-shared MB at paper scale (footprint minus shared pools).
    pub fn non_shared_mb(&self) -> f64 {
        (self.footprint_mb - self.true_shared_mb - self.false_shared_mb).max(0.0)
    }

    /// Total kernel invocations (`kernels.len() * repeats`).
    pub fn total_kernels(&self) -> usize {
        self.kernels.len() * self.repeats as usize
    }
}

#[allow(clippy::too_many_arguments)]
fn k(
    weight: f64,
    f_true: f64,
    f_false: f64,
    true_remote_frac: f64,
    true_hot_frac: f64,
    block_rounds: u32,
    write_frac: f64,
    compute_gap: u32,
) -> KernelBehavior {
    KernelBehavior {
        weight,
        f_true,
        f_false,
        true_remote_frac,
        true_hot_frac,
        block_rounds,
        write_frac,
        compute_gap,
    }
}

/// All 16 profiles in Table 4 order (SM-side preferred first).
pub fn all_profiles() -> Vec<BenchmarkProfile> {
    vec![
        // ---------------- SM-side preferred (top half) ----------------
        BenchmarkProfile {
            name: "RN",
            suite: "Tango",
            ctas: 512,
            footprint_mb: 21.0,
            true_shared_mb: 11.0,
            false_shared_mb: 4.0,
            preference: Preference::SmSide,
            kernels: vec![k(1.0, 0.45, 0.25, 0.70, 0.25, 3, 0.10, 0)],
            repeats: 2,
        },
        BenchmarkProfile {
            name: "AN",
            suite: "Tango",
            ctas: 1024,
            footprint_mb: 20.0,
            true_shared_mb: 9.0,
            false_shared_mb: 3.0,
            preference: Preference::SmSide,
            kernels: vec![k(1.0, 0.40, 0.25, 0.70, 0.25, 3, 0.10, 0)],
            repeats: 2,
        },
        BenchmarkProfile {
            name: "SN",
            suite: "Tango",
            ctas: 512,
            footprint_mb: 18.0,
            true_shared_mb: 2.0,
            false_shared_mb: 13.0,
            preference: Preference::SmSide,
            kernels: vec![k(1.0, 0.15, 0.55, 0.70, 0.30, 3, 0.15, 0)],
            repeats: 2,
        },
        BenchmarkProfile {
            name: "CFD",
            suite: "Rodinia",
            ctas: 4031,
            footprint_mb: 97.0,
            true_shared_mb: 9.0,
            false_shared_mb: 33.0,
            preference: Preference::SmSide,
            kernels: vec![k(1.0, 0.30, 0.40, 0.70, 0.25, 3, 0.15, 0)],
            repeats: 3,
        },
        BenchmarkProfile {
            name: "BFS",
            suite: "Rodinia",
            ctas: 1954,
            footprint_mb: 37.0,
            true_shared_mb: 10.0,
            false_shared_mb: 14.0,
            preference: Preference::SmSide,
            // K1 streams the whole truly-shared frontier (memory-side
            // preferred); K2 works on a small hot frontier with heavy false
            // sharing (SM-side preferred). Fig. 12.
            kernels: vec![
                k(0.45, 0.45, 0.04, 0.25, 1.0, 3, 0.40, 0),
                k(0.55, 0.30, 0.45, 0.70, 0.22, 3, 0.15, 0),
            ],
            repeats: 2,
        },
        BenchmarkProfile {
            name: "3DC",
            suite: "Polybench",
            ctas: 2048,
            footprint_mb: 98.0,
            true_shared_mb: 17.0,
            false_shared_mb: 38.0,
            preference: Preference::SmSide,
            // Atypical (§5.3): small gap between the organizations.
            kernels: vec![k(1.0, 0.20, 0.30, 0.50, 0.35, 2, 0.20, 1)],
            repeats: 2,
        },
        BenchmarkProfile {
            name: "BS",
            suite: "Nvidia SDK",
            ctas: 480,
            footprint_mb: 76.0,
            true_shared_mb: 0.0,
            false_shared_mb: 56.0,
            preference: Preference::SmSide,
            // Pure false sharing, no truly-shared data; atypical (§5.3).
            kernels: vec![k(1.0, 0.0, 0.55, 0.0, 0.1, 2, 0.25, 1)],
            repeats: 2,
        },
        BenchmarkProfile {
            name: "BT",
            suite: "Rodinia",
            ctas: 48096,
            footprint_mb: 31.0,
            true_shared_mb: 4.0,
            false_shared_mb: 19.0,
            preference: Preference::SmSide,
            kernels: vec![k(1.0, 0.20, 0.45, 0.70, 0.25, 3, 0.20, 0)],
            repeats: 3,
        },
        // --------------- memory-side preferred (bottom half) -----------
        BenchmarkProfile {
            name: "SRAD",
            suite: "Rodinia",
            ctas: 65536,
            footprint_mb: 753.0,
            true_shared_mb: 30.0,
            false_shared_mb: 3.0,
            preference: Preference::MemorySide,
            kernels: vec![k(1.0, 0.45, 0.04, 0.25, 1.0, 3, 0.40, 0)],
            repeats: 2,
        },
        BenchmarkProfile {
            name: "GEMM",
            suite: "Polybench",
            ctas: 2048,
            footprint_mb: 174.0,
            true_shared_mb: 14.0,
            false_shared_mb: 21.0,
            preference: Preference::MemorySide,
            kernels: vec![k(1.0, 0.45, 0.05, 0.25, 1.0, 3, 0.32, 0)],
            repeats: 1,
        },
        BenchmarkProfile {
            name: "LUD",
            suite: "Rodinia",
            ctas: 131068,
            footprint_mb: 317.0,
            true_shared_mb: 38.0,
            false_shared_mb: 51.0,
            preference: Preference::MemorySide,
            kernels: vec![k(1.0, 0.45, 0.06, 0.25, 1.0, 3, 0.35, 0)],
            repeats: 2,
        },
        BenchmarkProfile {
            name: "STEN",
            suite: "Parboil",
            ctas: 1024,
            footprint_mb: 205.0,
            true_shared_mb: 18.0,
            false_shared_mb: 17.0,
            preference: Preference::MemorySide,
            kernels: vec![k(1.0, 0.45, 0.05, 0.25, 1.0, 3, 0.35, 0)],
            repeats: 2,
        },
        BenchmarkProfile {
            name: "3MM",
            suite: "Polybench",
            ctas: 4096,
            footprint_mb: 109.0,
            true_shared_mb: 12.0,
            false_shared_mb: 7.0,
            preference: Preference::MemorySide,
            kernels: vec![k(1.0, 0.45, 0.04, 0.25, 1.0, 3, 0.32, 0)],
            repeats: 1,
        },
        BenchmarkProfile {
            name: "BP",
            suite: "Rodinia",
            ctas: 65536,
            footprint_mb: 76.0,
            true_shared_mb: 4.0,
            false_shared_mb: 0.0,
            preference: Preference::MemorySide,
            // Atypical (§5.3): almost no sharing at all.
            kernels: vec![k(1.0, 0.15, 0.0, 0.25, 0.8, 2, 0.20, 1)],
            repeats: 2,
        },
        BenchmarkProfile {
            name: "DWT",
            suite: "Rodinia",
            ctas: 91373,
            footprint_mb: 207.0,
            true_shared_mb: 3.0,
            false_shared_mb: 10.0,
            preference: Preference::MemorySide,
            // Atypical (§5.3): tiny shared pools, streaming non-shared.
            kernels: vec![k(1.0, 0.10, 0.10, 0.25, 0.8, 2, 0.25, 1)],
            repeats: 3,
        },
        BenchmarkProfile {
            name: "NN",
            suite: "Tango",
            ctas: 60000,
            footprint_mb: 1388.0,
            true_shared_mb: 154.0,
            false_shared_mb: 0.0,
            preference: Preference::MemorySide,
            kernels: vec![k(1.0, 0.45, 0.0, 0.20, 1.0, 3, 0.28, 0)],
            repeats: 1,
        },
    ]
}

/// Look up a profile by its Table 4 name (case-sensitive).
pub fn by_name(name: &str) -> Option<BenchmarkProfile> {
    all_profiles().into_iter().find(|p| p.name == name)
}

/// The SM-side-preferred subset (top half of Table 4).
pub fn sm_side_preferred() -> Vec<BenchmarkProfile> {
    all_profiles()
        .into_iter()
        .filter(|p| p.preference == Preference::SmSide)
        .collect()
}

/// The memory-side-preferred subset (bottom half of Table 4).
pub fn memory_side_preferred() -> Vec<BenchmarkProfile> {
    all_profiles()
        .into_iter()
        .filter(|p| p.preference == Preference::MemorySide)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_benchmarks_split_evenly() {
        let all = all_profiles();
        assert_eq!(all.len(), 16);
        assert_eq!(sm_side_preferred().len(), 8);
        assert_eq!(memory_side_preferred().len(), 8);
    }

    #[test]
    fn table4_data_matches_paper() {
        let nn = by_name("NN").unwrap();
        assert_eq!(nn.ctas, 60000);
        assert_eq!(nn.footprint_mb, 1388.0);
        assert_eq!(nn.true_shared_mb, 154.0);
        let bs = by_name("BS").unwrap();
        assert_eq!(bs.true_shared_mb, 0.0);
        assert_eq!(bs.false_shared_mb, 56.0);
        assert!(by_name("NOPE").is_none());
    }

    #[test]
    fn kernel_fractions_are_sane() {
        for p in all_profiles() {
            let total_weight: f64 = p.kernels.iter().map(|b| b.weight).sum();
            assert!((total_weight - 1.0).abs() < 1e-9, "{}", p.name);
            for b in &p.kernels {
                assert!(b.f_true + b.f_false <= 1.0 + 1e-9, "{}", p.name);
                assert!(b.f_non() >= -1e-9);
                assert!((0.0..=1.0).contains(&b.write_frac));
                assert!(b.true_hot_frac > 0.0 && b.true_hot_frac <= 1.0);
                assert!(b.block_rounds >= 1);
            }
            assert!(p.non_shared_mb() >= 0.0, "{}", p.name);
            assert!(p.total_kernels() >= 1);
        }
    }

    #[test]
    fn bfs_alternates_two_kernels() {
        let bfs = by_name("BFS").unwrap();
        assert_eq!(bfs.kernels.len(), 2);
        assert_eq!(bfs.total_kernels(), 4);
        // K1 streams (hot = 1.0), K2 has a small hot window.
        assert!(bfs.kernels[0].true_hot_frac > bfs.kernels[1].true_hot_frac);
    }
}
