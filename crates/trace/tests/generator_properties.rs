//! Property-based tests of the workload generator's invariants.

use mcgpu_trace::{generate, profiles, SharingClass, TraceParams};
use mcgpu_types::MachineConfig;
use proptest::prelude::*;

fn cfg() -> MachineConfig {
    MachineConfig::experiment_baseline()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generated address falls inside the layout's footprint, for any
    /// benchmark and input scale.
    #[test]
    fn addresses_stay_in_footprint(
        bench_idx in 0usize..16,
        scale_exp in -3i32..=2,
        seed in any::<u64>(),
    ) {
        let c = cfg();
        let p = &profiles::all_profiles()[bench_idx];
        let params = TraceParams {
            total_accesses: 4_000,
            seed,
            input_scale: 2f64.powi(scale_exp),
        };
        let wl = generate(&c, p, &params);
        let limit = wl.layout.footprint_bytes();
        for k in &wl.kernels {
            for stream in &k.per_cluster {
                for a in stream.iter() {
                    prop_assert!(a.addr.raw() < limit,
                        "{}: {:#x} outside footprint {:#x}", p.name, a.addr.raw(), limit);
                }
            }
        }
    }

    /// Pool access fractions approximately match the profile's behaviour
    /// knobs (within sampling noise).
    #[test]
    fn pool_fractions_match_profile(bench_idx in 0usize..16) {
        let c = cfg();
        let p = &profiles::all_profiles()[bench_idx];
        let params = TraceParams {
            total_accesses: 40_000,
            ..TraceParams::quick()
        };
        let wl = generate(&c, p, &params);
        // Expected fractions weighted over the kernel sequence.
        let expected_true: f64 = p.kernels.iter().map(|k| k.weight * k.f_true).sum();
        let mut true_count = 0usize;
        let mut total = 0usize;
        for (_, a) in wl.merged_stream() {
            total += 1;
            if wl.layout.classify(a.addr.line(c.line_size)) == SharingClass::TrueShared {
                true_count += 1;
            }
        }
        let measured = true_count as f64 / total as f64;
        prop_assert!((measured - expected_true).abs() < 0.05,
            "{}: f_true expected {:.2} measured {:.2}", p.name, expected_true, measured);
    }

    /// Kernel count and stream shapes are structurally consistent.
    #[test]
    fn kernel_structure_is_consistent(bench_idx in 0usize..16, seed in any::<u64>()) {
        let c = cfg();
        let p = &profiles::all_profiles()[bench_idx];
        let params = TraceParams {
            total_accesses: 8_000,
            seed,
            input_scale: 1.0,
        };
        let wl = generate(&c, p, &params);
        prop_assert_eq!(wl.kernels.len(), p.total_kernels());
        let clusters = c.chips * c.clusters_per_chip;
        for k in &wl.kernels {
            prop_assert_eq!(k.per_cluster.len(), clusters);
            // Streams within a kernel are balanced (equal length).
            let n = k.per_cluster[0].len();
            prop_assert!(k.per_cluster.iter().all(|s| s.len() == n));
        }
    }
}
