//! Byte, cache-line and page address arithmetic.
//!
//! The simulator works on 64-bit byte addresses. Cache lines are 128 B in the
//! baseline (Table 3) and pages 4 KiB; both are configurable, so the
//! conversion methods take the relevant size as an argument and the newtypes
//! simply distinguish the three granularities statically.

use std::fmt;

/// A 64-bit byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(pub u64);

/// A cache-line address: the byte address divided by the line size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

/// A page address: the byte address divided by the page size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageAddr(pub u64);

/// Identifies one sector within a cache line (sectored caches, Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SectorId(pub u8);

impl Address {
    /// Wrap a raw byte address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// The raw byte address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache line containing this address.
    ///
    /// # Panics
    /// Panics if `line_size` is not a power of two.
    #[inline]
    pub fn line(self, line_size: u64) -> LineAddr {
        debug_assert!(line_size.is_power_of_two());
        LineAddr(self.0 / line_size)
    }

    /// The page containing this address.
    ///
    /// # Panics
    /// Panics if `page_size` is not a power of two.
    #[inline]
    pub fn page(self, page_size: u64) -> PageAddr {
        debug_assert!(page_size.is_power_of_two());
        PageAddr(self.0 / page_size)
    }

    /// The byte offset within the containing line.
    #[inline]
    pub fn line_offset(self, line_size: u64) -> u64 {
        self.0 & (line_size - 1)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl LineAddr {
    /// The line index (byte address / line size).
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The first byte address of this line.
    #[inline]
    pub fn base(self, line_size: u64) -> Address {
        Address(self.0 * line_size)
    }

    /// The page containing this line.
    #[inline]
    pub fn page(self, line_size: u64, page_size: u64) -> PageAddr {
        debug_assert!(page_size >= line_size);
        PageAddr(self.0 / (page_size / line_size))
    }

    /// The sector of this line that `addr` falls in, with `sectors` sectors
    /// per line.
    #[inline]
    pub fn sector_of(addr: Address, line_size: u64, sectors: u32) -> SectorId {
        let off = addr.line_offset(line_size);
        let sector_size = line_size / sectors as u64;
        SectorId((off / sector_size) as u8)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl PageAddr {
    /// The page index (byte address / page size).
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The first byte address of this page.
    #[inline]
    pub fn base(self, page_size: u64) -> Address {
        Address(self.0 * page_size)
    }

    /// The first line of this page.
    #[inline]
    pub fn first_line(self, line_size: u64, page_size: u64) -> LineAddr {
        LineAddr(self.0 * (page_size / line_size))
    }

    /// Number of cache lines in a page.
    #[inline]
    pub fn lines_per_page(line_size: u64, page_size: u64) -> u64 {
        page_size / line_size
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: u64 = 128;
    const PAGE: u64 = 4096;

    #[test]
    fn line_and_page_round_trip() {
        let a = Address::new(5 * PAGE + 3 * LINE + 17);
        assert_eq!(a.page(PAGE).index(), 5);
        assert_eq!(a.line(LINE).index(), (5 * PAGE + 3 * LINE) / LINE);
        assert_eq!(a.line(LINE).page(LINE, PAGE), a.page(PAGE));
        assert_eq!(a.line(LINE).base(LINE).raw(), 5 * PAGE + 3 * LINE);
        assert_eq!(a.line_offset(LINE), 17);
    }

    #[test]
    fn page_first_line() {
        let p = PageAddr(7);
        assert_eq!(p.first_line(LINE, PAGE).index(), 7 * 32);
        assert_eq!(PageAddr::lines_per_page(LINE, PAGE), 32);
        assert_eq!(p.base(PAGE).raw(), 7 * 4096);
    }

    #[test]
    fn sectors() {
        // 128 B line, 4 sectors of 32 B each.
        let base = Address::new(1000 * LINE);
        assert_eq!(LineAddr::sector_of(base, LINE, 4), SectorId(0));
        assert_eq!(
            LineAddr::sector_of(Address::new(base.raw() + 32), LINE, 4),
            SectorId(1)
        );
        assert_eq!(
            LineAddr::sector_of(Address::new(base.raw() + 127), LINE, 4),
            SectorId(3)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Address::new(0xff).to_string(), "0xff");
        assert_eq!(LineAddr(0x10).to_string(), "L0x10");
        assert_eq!(PageAddr(0x2).to_string(), "P0x2");
    }
}
