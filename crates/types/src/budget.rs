//! Per-cycle bandwidth accounting.
//!
//! Every bandwidth-limited resource in the simulator (NoC port, LLC slice,
//! DRAM channel, inter-chip link) is modelled with a [`BandwidthBudget`]: a
//! credit counter that is replenished by `rate` bytes every cycle (fractional
//! rates are supported) and consumed when a packet is transferred. Credit is
//! capped at a small multiple of the rate so that an idle resource cannot
//! bank unbounded bandwidth and later burst.

/// A replenishing byte-credit counter modelling a fixed-bandwidth resource.
///
/// # Example
/// ```
/// use mcgpu_types::BandwidthBudget;
///
/// // A 64 B/cycle link (one cycle of credit is available immediately).
/// let mut link = BandwidthBudget::new(64.0);
/// assert!(link.try_consume(64));
/// assert!(!link.try_consume(1)); // exhausted this cycle
/// link.refill();
/// assert!(link.try_consume(32));
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthBudget {
    rate: f64,
    credit: f64,
    cap: f64,
}

/// How many cycles' worth of credit a budget may bank while idle.
///
/// A cap of a few cycles lets a large packet (several flits) that straddles a
/// cycle boundary go through without modelling sub-packet flits, while still
/// preventing unbounded bursts.
const CAP_CYCLES: f64 = 4.0;

impl BandwidthBudget {
    /// Create a budget replenished by `rate` bytes per cycle.
    ///
    /// # Panics
    /// Panics if `rate` is not finite or is negative.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "invalid bandwidth rate");
        // Start with one cycle of credit so a resource can accept traffic in
        // the cycle it is created (before its first refill).
        BandwidthBudget {
            rate,
            credit: rate,
            cap: rate * CAP_CYCLES,
        }
    }

    /// An unlimited budget (used for point-to-point connections the paper
    /// assumes are never the bottleneck, e.g. LLC slice to its own memory
    /// controller).
    pub fn unlimited() -> Self {
        BandwidthBudget {
            rate: f64::INFINITY,
            credit: f64::INFINITY,
            cap: f64::INFINITY,
        }
    }

    /// The configured rate in bytes per cycle.
    #[inline]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Change the replenish rate at runtime (fault injection: link lane
    /// drops, DRAM thermal throttle). Banked credit is clamped to the new
    /// cap so a downgraded resource cannot burst at its old speed; a
    /// negative credit (packet tail in transit) is preserved.
    ///
    /// # Panics
    /// Panics if `rate` is not finite or is negative.
    pub fn set_rate(&mut self, rate: f64) {
        assert!(rate.is_finite() && rate >= 0.0, "invalid bandwidth rate");
        self.rate = rate;
        self.cap = rate * CAP_CYCLES;
        self.credit = self.credit.min(self.cap);
    }

    /// Replenish one cycle's worth of credit. Call exactly once per cycle.
    #[inline]
    pub fn refill(&mut self) {
        self.credit = (self.credit + self.rate).min(self.cap);
    }

    /// Try to consume `bytes` of credit; returns `true` on success.
    ///
    /// A transfer is allowed when *any* positive credit is available and then
    /// drives the credit negative, which models a packet whose tail occupies
    /// the next cycle(s) — standard token-bucket link modelling. This keeps
    /// large packets (128 B lines on a 54 B/cycle DRAM channel) flowing at
    /// exactly the configured average rate.
    #[inline]
    pub fn try_consume(&mut self, bytes: u64) -> bool {
        if self.credit > 0.0 {
            self.credit -= bytes as f64;
            true
        } else {
            false
        }
    }

    /// Current credit (may be negative while a packet tail drains).
    #[inline]
    pub fn credit(&self) -> f64 {
        self.credit
    }

    /// Whether a transfer could start this cycle.
    #[inline]
    pub fn available(&self) -> bool {
        self.credit > 0.0
    }

    /// Whether a [`refill`](Self::refill) would leave the credit bit-for-bit
    /// unchanged. This is the idle-skip saturation test: once an idle
    /// budget's credit has climbed to its cap (a handful of cycles after its
    /// last transfer), further refills are no-ops and the cycles between can
    /// be skipped without perturbing checkpointed state. Compared on exact
    /// bit patterns because budget credits serialize bit-exactly into
    /// `mcgpu-ckpt-v1` snapshots.
    #[inline]
    pub fn refill_is_noop(&self) -> bool {
        ((self.credit + self.rate).min(self.cap)).to_bits() == self.credit.to_bits()
    }

    /// Serialize into a checkpoint payload (exact bit patterns — a
    /// negative or infinite credit round-trips unchanged).
    pub fn save(&self, e: &mut crate::ckpt::Enc) {
        e.put_f64(self.rate);
        e.put_f64(self.credit);
        e.put_f64(self.cap);
    }

    /// Deserialize from a checkpoint payload.
    ///
    /// # Errors
    /// Returns a decode error on truncated input.
    pub fn load(d: &mut crate::ckpt::Dec<'_>) -> crate::ckpt::CkptResult<Self> {
        Ok(BandwidthBudget {
            rate: d.get_f64()?,
            credit: d.get_f64()?,
            cap: d.get_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sustained_rate_is_respected() {
        // 10 B/cycle budget moving 128 B packets: over 1280 cycles exactly
        // ~100 packets should fit.
        let mut b = BandwidthBudget::new(10.0);
        let mut sent = 0u32;
        for _ in 0..1280 {
            b.refill();
            if b.try_consume(128) {
                sent += 1;
            }
        }
        assert!((99..=101).contains(&sent), "sent {sent}");
    }

    #[test]
    fn credit_is_capped() {
        let mut b = BandwidthBudget::new(8.0);
        for _ in 0..1000 {
            b.refill();
        }
        assert!(b.credit() <= 8.0 * CAP_CYCLES + 1e-9);
    }

    #[test]
    fn zero_rate_never_allows() {
        let mut b = BandwidthBudget::new(0.0);
        for _ in 0..10 {
            b.refill();
            assert!(!b.try_consume(1));
        }
    }

    #[test]
    fn unlimited_always_allows() {
        let mut b = BandwidthBudget::unlimited();
        for _ in 0..10 {
            assert!(b.try_consume(1 << 30));
        }
        b.refill();
        assert!(b.available());
    }

    #[test]
    fn fractional_rate_accumulates() {
        // 0.5 B/cycle: a 1 B packet every 2 cycles.
        let mut b = BandwidthBudget::new(0.5);
        let mut sent = 0;
        for _ in 0..100 {
            b.refill();
            if b.try_consume(1) {
                sent += 1;
            }
        }
        assert!((49..=51).contains(&sent), "sent {sent}");
    }
}
