//! `mcgpu-ckpt-v1` — the versioned engine checkpoint codec.
//!
//! A checkpoint is a deterministic binary snapshot of the full live state
//! of a simulation, written mid-run so a killed process can resume from
//! the last snapshot instead of cycle 0. The format is deliberately dumb:
//! a fixed little-endian byte stream with no self-description, because the
//! correctness bar is *byte-identical resume* — the same state must encode
//! to the same bytes on every platform, and a restored run must finish
//! bit-for-bit equal to an uninterrupted one.
//!
//! # File layout
//!
//! ```text
//! magic    13 B   "mcgpu-ckpt-v1"
//! version   4 B   u32 LE (currently 1)
//! length    8 B   u64 LE, byte length of payload
//! payload   N B   engine state, encoded with [`Enc`]
//! checksum  8 B   u64 LE, FNV-1a-64 over everything above
//! ```
//!
//! The trailing length + checksum make torn writes detectable: a snapshot
//! that was cut short by a crash fails the length or checksum test and is
//! skipped by the loader ([`read_snapshot`] returns a typed error, never a
//! partial payload). Files are produced through
//! [`fsio::atomic_write`](crate::fsio::atomic_write), so a reader can also
//! never observe a half-renamed file.
//!
//! # Versioning / compatibility policy
//!
//! The payload layout is tied to the engine's in-memory state, so any
//! change to simulator state bumps `CKPT_VERSION` and readers reject other
//! versions outright ([`CkptError::BadVersion`]) — a stale snapshot then
//! falls back to a full re-run, which is always correct. There is no
//! cross-version migration: checkpoints are resumable work products, not
//! archival artifacts.

use crate::ids::{ChipId, ClusterId};
use crate::packet::{AccessKind, MemAccess, Request, RequestId, Response, ResponseOrigin};
use std::fmt;
use std::path::Path;

/// Leading magic bytes of a checkpoint file.
pub const CKPT_MAGIC: &[u8; 13] = b"mcgpu-ckpt-v1";
/// Current payload-layout version.
pub const CKPT_VERSION: u32 = 1;
/// Bytes of framing around the payload (magic + version + length + checksum).
const FRAME_BYTES: usize = 13 + 4 + 8 + 8;

/// FNV-1a 64-bit hash (the workspace's standard content fingerprint).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Why a snapshot could not be loaded. Every variant is a "skip this file
/// and fall back to a full run" signal — the loader never panics on bad
/// bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The file could not be read at all.
    Io(String),
    /// The file is shorter than the fixed framing.
    TooShort {
        /// Actual file length in bytes.
        len: usize,
    },
    /// The magic bytes are not `mcgpu-ckpt-v1`.
    BadMagic,
    /// The version field is not [`CKPT_VERSION`].
    BadVersion(u32),
    /// The recorded payload length disagrees with the file size (torn
    /// write).
    LengthMismatch {
        /// Payload length recorded in the header.
        recorded: u64,
        /// Payload length actually present.
        actual: u64,
    },
    /// The FNV-1a checksum over the file body does not match the trailer
    /// (torn or corrupted write).
    ChecksumMismatch,
    /// The payload frame was intact but its contents did not decode — a
    /// truncated field, an unknown enum tag, or state inconsistent with
    /// the running configuration.
    Decode(String),
    /// The snapshot decodes but belongs to a different config/workload
    /// fingerprint than the run trying to adopt it.
    FingerprintMismatch {
        /// Fingerprint recorded in the snapshot.
        snapshot: u64,
        /// Fingerprint of the run attempting the restore.
        expected: u64,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::TooShort { len } => {
                write!(f, "checkpoint file too short ({len} B) to be valid")
            }
            CkptError::BadMagic => write!(f, "not a mcgpu-ckpt file (bad magic)"),
            CkptError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (want {CKPT_VERSION})"
                )
            }
            CkptError::LengthMismatch { recorded, actual } => write!(
                f,
                "torn checkpoint: header says {recorded} payload bytes, file has {actual}"
            ),
            CkptError::ChecksumMismatch => write!(f, "torn checkpoint: checksum mismatch"),
            CkptError::Decode(e) => write!(f, "checkpoint payload did not decode: {e}"),
            CkptError::FingerprintMismatch { snapshot, expected } => write!(
                f,
                "checkpoint fingerprint {snapshot:#018x} does not match run {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for CkptError {}

/// Decode result shorthand.
pub type CkptResult<T> = Result<T, CkptError>;

/// Little-endian byte-stream encoder for checkpoint payloads.
///
/// # Example
/// ```
/// use mcgpu_types::ckpt::{Dec, Enc};
/// let mut e = Enc::new();
/// e.put_u64(42);
/// e.put_str("ring");
/// let bytes = e.into_bytes();
/// let mut d = Dec::new(&bytes);
/// assert_eq!(d.get_u64().unwrap(), 42);
/// assert_eq!(d.get_str().unwrap(), "ring");
/// d.finish().unwrap();
/// ```
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// A fresh, empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Consume the encoder, yielding the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a `u16` little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u128` little-endian.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64` (checkpoints are 64-bit regardless of
    /// host).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` by its exact bit pattern (negative credit,
    /// infinities and NaN payloads all round-trip bit-identically).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Append a sequence length prefix (then encode each element).
    pub fn put_seq_len(&mut self, n: usize) {
        self.put_usize(n);
    }

    /// Append a [`MemAccess`].
    pub fn put_access(&mut self, a: &MemAccess) {
        self.put_u64(a.addr.raw());
        self.put_u8(match a.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        });
    }

    /// Append a [`ClusterId`].
    pub fn put_cluster_id(&mut self, c: ClusterId) {
        self.put_u8(c.chip.0);
        self.put_u16(c.index);
    }

    /// Append a [`Request`].
    pub fn put_request(&mut self, r: &Request) {
        self.put_u64(r.id.0);
        self.put_cluster_id(r.origin);
        self.put_access(&r.access);
        self.put_u8(r.home.0);
    }

    /// Append a [`Response`].
    pub fn put_response(&mut self, r: &Response) {
        self.put_u64(r.id.0);
        self.put_cluster_id(r.dest);
        self.put_access(&r.access);
        self.put_u8(match r.origin {
            ResponseOrigin::LocalLlc => 0,
            ResponseOrigin::RemoteLlc => 1,
            ResponseOrigin::LocalMem => 2,
            ResponseOrigin::RemoteMem => 3,
        });
    }
}

/// Little-endian byte-stream decoder matching [`Enc`]. Every getter is
/// bounds-checked and returns [`CkptError::Decode`] instead of panicking,
/// so arbitrary corrupt bytes are safe to feed in.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode from `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> CkptResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CkptError::Decode(format!(
                "truncated payload: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Require that every byte was consumed (trailing garbage is a decode
    /// error — it means encoder and decoder disagree on the layout).
    pub fn finish(&self) -> CkptResult<()> {
        if self.remaining() != 0 {
            return Err(CkptError::Decode(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> CkptResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool (rejecting anything but 0/1).
    pub fn get_bool(&mut self) -> CkptResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CkptError::Decode(format!("invalid bool byte {b}"))),
        }
    }

    /// Read a `u16` little-endian.
    pub fn get_u16(&mut self) -> CkptResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a `u32` little-endian.
    pub fn get_u32(&mut self) -> CkptResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64` little-endian.
    pub fn get_u64(&mut self) -> CkptResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `u128` little-endian.
    pub fn get_u128(&mut self) -> CkptResult<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Read a `usize` (stored as `u64`), rejecting values that do not fit.
    pub fn get_usize(&mut self) -> CkptResult<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CkptError::Decode(format!("usize overflow: {v}")))
    }

    /// Read an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> CkptResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> CkptResult<&'a [u8]> {
        let n = self.get_usize()?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> CkptResult<&'a str> {
        std::str::from_utf8(self.get_bytes()?)
            .map_err(|e| CkptError::Decode(format!("invalid UTF-8 string: {e}")))
    }

    /// Read a sequence length prefix, rejecting lengths that could not
    /// possibly fit in the remaining bytes (defends `Vec::with_capacity`
    /// against corrupt length fields).
    pub fn get_seq_len(&mut self) -> CkptResult<usize> {
        let n = self.get_usize()?;
        if n > self.remaining() {
            return Err(CkptError::Decode(format!(
                "sequence length {n} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Read a [`MemAccess`].
    pub fn get_access(&mut self) -> CkptResult<MemAccess> {
        let addr = crate::addr::Address::new(self.get_u64()?);
        let kind = match self.get_u8()? {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            t => return Err(CkptError::Decode(format!("invalid AccessKind tag {t}"))),
        };
        Ok(MemAccess { addr, kind })
    }

    /// Read a [`ClusterId`].
    pub fn get_cluster_id(&mut self) -> CkptResult<ClusterId> {
        let chip = ChipId(self.get_u8()?);
        let index = self.get_u16()?;
        Ok(ClusterId { chip, index })
    }

    /// Read a [`Request`].
    pub fn get_request(&mut self) -> CkptResult<Request> {
        Ok(Request {
            id: RequestId(self.get_u64()?),
            origin: self.get_cluster_id()?,
            access: self.get_access()?,
            home: ChipId(self.get_u8()?),
        })
    }

    /// Read a [`Response`].
    pub fn get_response(&mut self) -> CkptResult<Response> {
        Ok(Response {
            id: RequestId(self.get_u64()?),
            dest: self.get_cluster_id()?,
            access: self.get_access()?,
            origin: match self.get_u8()? {
                0 => ResponseOrigin::LocalLlc,
                1 => ResponseOrigin::RemoteLlc,
                2 => ResponseOrigin::LocalMem,
                3 => ResponseOrigin::RemoteMem,
                t => {
                    return Err(CkptError::Decode(format!("invalid ResponseOrigin tag {t}")));
                }
            },
        })
    }
}

/// Frame `payload` into the `mcgpu-ckpt-v1` file layout (magic, version,
/// length, payload, checksum).
pub fn frame_snapshot(payload: &[u8]) -> Vec<u8> {
    let mut file = Vec::with_capacity(payload.len() + FRAME_BYTES);
    file.extend_from_slice(CKPT_MAGIC);
    file.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file.extend_from_slice(payload);
    let sum = fnv1a64(&file);
    file.extend_from_slice(&sum.to_le_bytes());
    file
}

/// Validate framing and return the payload slice of an in-memory snapshot
/// file image.
///
/// # Errors
/// Any framing violation (magic, version, length, checksum) yields the
/// corresponding [`CkptError`]; no partial payload is ever returned.
pub fn unframe_snapshot(file: &[u8]) -> CkptResult<&[u8]> {
    if file.len() < FRAME_BYTES {
        return Err(CkptError::TooShort { len: file.len() });
    }
    if &file[..13] != CKPT_MAGIC {
        return Err(CkptError::BadMagic);
    }
    let version = u32::from_le_bytes(file[13..17].try_into().unwrap());
    if version != CKPT_VERSION {
        return Err(CkptError::BadVersion(version));
    }
    let recorded = u64::from_le_bytes(file[17..25].try_into().unwrap());
    let actual = (file.len() - FRAME_BYTES) as u64;
    if recorded != actual {
        return Err(CkptError::LengthMismatch { recorded, actual });
    }
    let body = &file[..file.len() - 8];
    let sum = u64::from_le_bytes(file[file.len() - 8..].try_into().unwrap());
    if fnv1a64(body) != sum {
        return Err(CkptError::ChecksumMismatch);
    }
    Ok(&file[25..file.len() - 8])
}

/// Durably write `payload` as a framed snapshot at `path` (tmp + fsync +
/// atomic rename via [`fsio`](crate::fsio)).
///
/// # Errors
/// Propagates the underlying I/O error; the previous snapshot at `path`,
/// if any, survives any failure intact.
pub fn write_snapshot(path: &Path, payload: &[u8]) -> std::io::Result<()> {
    crate::fsio::atomic_write(path, &frame_snapshot(payload))
}

/// Read and validate the snapshot at `path`, returning its payload.
///
/// # Errors
/// [`CkptError::Io`] if the file cannot be read; a framing error if it is
/// torn, corrupt, or from another format version. Callers treat every
/// error as "skip this snapshot and start from cycle 0".
pub fn read_snapshot(path: &Path) -> CkptResult<Vec<u8>> {
    let file =
        std::fs::read(path).map_err(|e| CkptError::Io(format!("{}: {e}", path.display())))?;
    unframe_snapshot(&file).map(<[u8]>::to_vec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        e.put_u8(0xab);
        e.put_bool(true);
        e.put_u16(0xbeef);
        e.put_u32(0xdead_beef);
        e.put_u64(u64::MAX - 1);
        e.put_u128(u128::MAX / 3);
        e.put_usize(12345);
        e.put_f64(-0.0);
        e.put_f64(f64::INFINITY);
        e.put_f64(-123.456);
        e.put_str("héllo");
        e.put_bytes(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 0xab);
        assert!(d.get_bool().unwrap());
        assert_eq!(d.get_u16().unwrap(), 0xbeef);
        assert_eq!(d.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(d.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.get_u128().unwrap(), u128::MAX / 3);
        assert_eq!(d.get_usize().unwrap(), 12345);
        assert_eq!(d.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.get_f64().unwrap(), f64::INFINITY);
        assert_eq!(d.get_f64().unwrap(), -123.456);
        assert_eq!(d.get_str().unwrap(), "héllo");
        assert_eq!(d.get_bytes().unwrap(), &[1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn packets_round_trip() {
        let req = Request {
            id: RequestId(7),
            origin: ClusterId::new(ChipId(2), 13),
            access: MemAccess::write(0xdead_0040u64),
            home: ChipId(3),
        };
        let rsp = Response {
            id: RequestId(7),
            dest: ClusterId::new(ChipId(2), 13),
            access: MemAccess::read(0x40u64),
            origin: ResponseOrigin::RemoteMem,
        };
        let mut e = Enc::new();
        e.put_request(&req);
        e.put_response(&rsp);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.get_request().unwrap(), req);
        assert_eq!(d.get_response().unwrap(), rsp);
        d.finish().unwrap();
    }

    #[test]
    fn decode_errors_not_panics() {
        let mut d = Dec::new(&[1, 2]);
        assert!(d.get_u64().is_err());
        let mut d = Dec::new(&[2]);
        assert!(d.get_bool().is_err());
        // A corrupt length field cannot trigger a huge allocation.
        let mut e = Enc::new();
        e.put_u64(u64::MAX);
        let bytes = e.into_bytes();
        assert!(Dec::new(&bytes).get_seq_len().is_err());
        assert!(Dec::new(&bytes).get_bytes().is_err());
    }

    #[test]
    fn framing_round_trips_and_detects_corruption() {
        let payload = b"state bytes".to_vec();
        let file = frame_snapshot(&payload);
        assert_eq!(unframe_snapshot(&file).unwrap(), &payload[..]);

        // Every truncation point is detected.
        for cut in 0..file.len() {
            assert!(unframe_snapshot(&file[..cut]).is_err(), "cut at {cut}");
        }
        // Every single-byte flip is detected.
        for i in 0..file.len() {
            let mut bad = file.clone();
            bad[i] ^= 0x01;
            assert!(unframe_snapshot(&bad).is_err(), "flip at {i}");
        }
        // Trailing junk is detected.
        let mut long = file.clone();
        long.push(0);
        assert!(matches!(
            unframe_snapshot(&long),
            Err(CkptError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut file = frame_snapshot(b"x");
        file[13] = 99; // version byte
                       // Re-stamp the checksum so only the version differs.
        let body_len = file.len() - 8;
        let sum = fnv1a64(&file[..body_len]);
        file[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(unframe_snapshot(&file), Err(CkptError::BadVersion(99)));
    }

    #[test]
    fn write_read_snapshot_round_trip() {
        let dir = std::env::temp_dir().join(format!("mcgpu_ckpt_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("cell.ckpt");
        write_snapshot(&p, b"payload").unwrap();
        assert_eq!(read_snapshot(&p).unwrap(), b"payload");
        assert!(read_snapshot(&dir.join("missing.ckpt")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
