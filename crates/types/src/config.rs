//! Machine configuration (Table 3 of the paper) and design-space scaling.
//!
//! All bandwidths are stored in GB/s. The simulated GPU clock is 1 GHz, so
//! **1 GB/s equals exactly 1 byte/cycle** — the simulator consumes these
//! values directly as per-cycle byte budgets.

use crate::error::ConfigError;
use crate::ids::ChipId;

/// Bandwidth unit marker: 1 GB/s == 1 byte/cycle at the 1 GHz GPU clock.
pub const GB_S: f64 = 1.0;

/// The five LLC organizations compared in the paper's evaluation (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LlcOrgKind {
    /// Baseline: each slice caches data of the local memory partition on
    /// behalf of all chips (Fig. 3a).
    MemorySide,
    /// Two-NoC SM-side organization: each chip's slices cache whatever its
    /// own SMs access, local or remote (Fig. 3b).
    SmSide,
    /// The L1.5 "Static LLC" of Arunkumar et al.: half the capacity caches
    /// local data, half caches remote data.
    StaticHalf,
    /// The Dynamic LLC of Milic et al.: the local/remote way split adapts at
    /// run time to balance local-memory vs inter-chip bandwidth.
    Dynamic,
    /// Sharing-Aware Caching: per-kernel choice between `MemorySide` and
    /// `SmSide` driven by the EAB model.
    Sac,
}

impl LlcOrgKind {
    /// All five organizations, in the paper's presentation order.
    pub const ALL: [LlcOrgKind; 5] = [
        LlcOrgKind::MemorySide,
        LlcOrgKind::SmSide,
        LlcOrgKind::StaticHalf,
        LlcOrgKind::Dynamic,
        LlcOrgKind::Sac,
    ];

    /// Short label used in reports and figure output.
    pub fn label(self) -> &'static str {
        match self {
            LlcOrgKind::MemorySide => "memory-side",
            LlcOrgKind::SmSide => "SM-side",
            LlcOrgKind::StaticHalf => "static",
            LlcOrgKind::Dynamic => "dynamic",
            LlcOrgKind::Sac => "SAC",
        }
    }

    /// Inverse of [`LlcOrgKind::label`], for reading journals and CLI args.
    pub fn from_label(label: &str) -> Option<LlcOrgKind> {
        LlcOrgKind::ALL.into_iter().find(|o| o.label() == label)
    }
}

impl std::fmt::Display for LlcOrgKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Coherence protocol for SM-side-capable configurations (§5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoherenceKind {
    /// Software-managed: flush + invalidate at kernel boundaries (baseline).
    #[default]
    Software,
    /// Hardware directory: sharers tracked at the home partition; a write
    /// invalidates all remote copies.
    Hardware,
}

/// The slice of a [`MachineConfig`] that LLC-organization policies consult
/// when making routing, fill, way-partition and kernel-boundary decisions.
///
/// Extracted once at simulator-build time ([`MachineConfig::policy_ctx`]) so
/// a policy carries only the structural facts its decisions depend on, never
/// the full machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PolicyCtx {
    /// Number of chips in the machine.
    pub chips: usize,
    /// LLC associativity (ways per set) — the domain of a way split.
    pub llc_assoc: usize,
    /// Total LLC slices machine-wide.
    pub total_slices: usize,
    /// LLC sets per chip (capacity ÷ ways ÷ line size).
    pub llc_sets_per_chip: usize,
    /// Whether the LLC tracks per-sector validity.
    pub sectored: bool,
    /// The coherence scheme enforced at kernel boundaries.
    pub coherence: CoherenceKind,
}

/// Memory interface generation (Fig. 14 "memory interface" sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemoryInterface {
    /// GDDR5-class: 0.9 TB/s aggregate.
    Gddr5,
    /// GDDR6-class: 1.75 TB/s aggregate (baseline).
    #[default]
    Gddr6,
    /// HBM2-class: 2.8 TB/s aggregate.
    Hbm2,
}

impl MemoryInterface {
    /// Aggregate DRAM bandwidth of the whole machine, in GB/s.
    pub fn total_gbs(self) -> f64 {
        match self {
            MemoryInterface::Gddr5 => 900.0,
            MemoryInterface::Gddr6 => 1750.0,
            MemoryInterface::Hbm2 => 2800.0,
        }
    }

    /// Label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            MemoryInterface::Gddr5 => "GDDR5",
            MemoryInterface::Gddr6 => "GDDR6",
            MemoryInterface::Hbm2 => "HBM2",
        }
    }
}

/// Uniform down-scaling of the simulated machine so full figure sweeps run in
/// minutes instead of days.
///
/// * `topology` divides unit counts (SM clusters, LLC slices, DRAM channels
///   per chip) and aggregate bandwidths (NoC bisection, inter-chip links) —
///   per-unit bandwidths are unchanged, so every bandwidth *ratio* the
///   paper's EAB argument rests on is preserved.
/// * `capacity` divides storage capacities (LLC) and, in `mcgpu-trace`,
///   workload footprints — so every working-set ÷ capacity ratio is
///   preserved. L1 capacity is scaled by `capacity / topology` so the total
///   L1 : LLC ratio per chip is also preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScaleFactor {
    /// Divisor for unit counts and aggregate bandwidths.
    pub topology: u32,
    /// Divisor for capacities and workload footprints.
    pub capacity: u32,
}

impl ScaleFactor {
    /// No scaling: the exact Table 3 machine.
    pub const UNIT: ScaleFactor = ScaleFactor {
        topology: 1,
        capacity: 1,
    };

    /// The default scale used by the experiment harness: 8 SM clusters,
    /// 4 LLC slices and 2 DRAM channels per chip; capacities and footprints
    /// divided by 16.
    pub const EXPERIMENT: ScaleFactor = ScaleFactor {
        topology: 4,
        capacity: 16,
    };
}

impl Default for ScaleFactor {
    fn default() -> Self {
        ScaleFactor::UNIT
    }
}

/// Full machine configuration (Table 3 plus latency parameters).
///
/// Construct with [`MachineConfig::paper_baseline`] (unscaled Table 3) or
/// [`MachineConfig::experiment_baseline`] (scaled for fast sweeps) and adjust
/// fields before calling [`MachineConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of GPU chips (Table 3: 4).
    pub chips: usize,
    /// SM clusters per chip; one cluster is two SMs sharing a NoC port.
    pub clusters_per_chip: usize,
    /// LLC slices per chip.
    pub slices_per_chip: usize,
    /// DRAM channels per chip (one memory partition per chip).
    pub channels_per_chip: usize,

    /// Cache line size in bytes (128).
    pub line_size: u64,
    /// Memory page size in bytes (4 KiB, first-touch allocated).
    pub page_size: u64,
    /// Sectors per cache line when `sectored` is set (4).
    pub sectors_per_line: u32,
    /// Whether caches are sectored (Fig. 14 sweep; baseline: conventional).
    pub sectored: bool,

    /// Private L1 capacity per SM cluster, bytes.
    pub l1_bytes_per_cluster: u64,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// LLC capacity per chip, bytes (4 MiB).
    pub llc_bytes_per_chip: u64,
    /// LLC associativity.
    pub llc_assoc: usize,

    /// Intra-chip NoC bisection bandwidth per chip, GB/s (4 TB/s).
    pub noc_bisection_gbs: f64,
    /// Per-LLC-slice bandwidth, GB/s (16 TB/s ÷ 64 slices = 250).
    pub llc_slice_gbs: f64,
    /// Per-DRAM-channel bandwidth, GB/s (1.75 TB/s ÷ 32 = 54.6875).
    pub dram_channel_gbs: f64,
    /// Inter-chip bandwidth per adjacent chip pair, per direction, GB/s.
    /// Baseline: 3 links × 64 GB/s bidirectional = 96 GB/s per direction.
    pub interchip_pair_gbs: f64,
    /// Physical links per adjacent pair in the ring (3).
    pub links_per_pair: usize,

    /// L1 hit latency, cycles.
    pub l1_hit_latency: u64,
    /// One-way intra-chip NoC traversal latency, cycles.
    pub noc_latency: u64,
    /// LLC access latency, cycles.
    pub llc_latency: u64,
    /// DRAM access latency, cycles.
    pub dram_latency: u64,
    /// One-way inter-chip hop latency, cycles.
    pub link_latency: u64,

    /// Outstanding-miss registers per SM cluster.
    pub mshrs_per_cluster: usize,
    /// Memory instructions an SM cluster can issue per cycle.
    pub issue_width: usize,

    /// Coherence protocol for SM-side configurations.
    pub coherence: CoherenceKind,
    /// Memory interface generation (adjusts `dram_channel_gbs`).
    pub memory_interface: MemoryInterface,
    /// Scale applied relative to Table 3.
    pub scale: ScaleFactor,

    /// Forward-progress watchdog window, cycles: the engine reports a
    /// deadlock if no request retires and no queue drains for this many
    /// consecutive cycles. `u64::MAX` disables the watchdog entirely.
    pub watchdog_cycles: u64,
}

impl MachineConfig {
    /// The unscaled Table 3 baseline.
    pub fn paper_baseline() -> Self {
        MachineConfig {
            chips: 4,
            clusters_per_chip: 32,
            slices_per_chip: 16,
            channels_per_chip: 8,
            line_size: 128,
            page_size: 4096,
            sectors_per_line: 4,
            sectored: false,
            l1_bytes_per_cluster: 256 << 10, // 2 SMs x 128 KB
            l1_assoc: 8,
            llc_bytes_per_chip: 4 << 20,
            llc_assoc: 16,
            noc_bisection_gbs: 4096.0,
            llc_slice_gbs: 250.0,
            dram_channel_gbs: 1750.0 / 32.0,
            interchip_pair_gbs: 96.0,
            links_per_pair: 3,
            l1_hit_latency: 28,
            noc_latency: 20,
            llc_latency: 90,
            dram_latency: 250,
            link_latency: 80,
            mshrs_per_cluster: 64,
            issue_width: 1,
            coherence: CoherenceKind::Software,
            memory_interface: MemoryInterface::Gddr6,
            scale: ScaleFactor::UNIT,
            watchdog_cycles: 1_000_000,
        }
    }

    /// The scaled baseline used by the experiment harness
    /// ([`ScaleFactor::EXPERIMENT`]).
    pub fn experiment_baseline() -> Self {
        Self::paper_baseline().scaled(ScaleFactor::EXPERIMENT)
    }

    /// Apply a [`ScaleFactor`], producing a smaller machine with identical
    /// bandwidth and capacity ratios (see [`ScaleFactor`] docs).
    ///
    /// # Panics
    /// Panics if scaling would reduce any unit count below one.
    pub fn scaled(mut self, scale: ScaleFactor) -> Self {
        let t = scale.topology as usize;
        let c = scale.capacity as u64;
        assert!(t >= 1 && c >= 1, "scale factors must be >= 1");
        assert!(
            self.clusters_per_chip >= t && self.slices_per_chip >= t && self.channels_per_chip >= t,
            "topology scale too large for machine"
        );
        self.clusters_per_chip /= t;
        self.slices_per_chip /= t;
        self.channels_per_chip = (self.channels_per_chip / t).max(1);
        self.noc_bisection_gbs /= t as f64;
        self.interchip_pair_gbs /= t as f64;
        self.llc_bytes_per_chip /= c;
        // Keep total-L1 : LLC per chip constant: clusters shrank by t, so the
        // per-cluster L1 only shrinks by c / t.
        self.l1_bytes_per_cluster = self.l1_bytes_per_cluster * t as u64 / c;
        // Keep the chip's total outstanding-miss capability (and hence its
        // latency-tolerance : bandwidth ratio) constant: fewer clusters each
        // get proportionally more MSHRs.
        self.mshrs_per_cluster *= t;
        self.scale = scale;
        self
    }

    /// Override the memory interface, rescaling per-channel DRAM bandwidth.
    pub fn with_memory_interface(mut self, iface: MemoryInterface) -> Self {
        let baseline_total = MemoryInterface::Gddr6.total_gbs();
        let factor = iface.total_gbs() / baseline_total;
        self.dram_channel_gbs = (1750.0 / 32.0) * factor;
        self.memory_interface = iface;
        self
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.chips < 2 {
            return Err(ConfigError::new("need at least 2 chips"));
        }
        if self.chips > 8 {
            return Err(ConfigError::new("ring topology supports at most 8 chips"));
        }
        if !self.line_size.is_power_of_two() || !self.page_size.is_power_of_two() {
            return Err(ConfigError::new(
                "line and page sizes must be powers of two",
            ));
        }
        if self.page_size < self.line_size {
            return Err(ConfigError::new("page size must be >= line size"));
        }
        if self.slices_per_chip == 0 || self.clusters_per_chip == 0 || self.channels_per_chip == 0 {
            return Err(ConfigError::new("unit counts must be positive"));
        }
        if self.l1_assoc == 0 || self.llc_assoc == 0 {
            return Err(ConfigError::new("cache associativities must be positive"));
        }
        if self.mshrs_per_cluster == 0 || self.issue_width == 0 || self.links_per_pair == 0 {
            return Err(ConfigError::new(
                "MSHRs, issue width and links per pair must be positive",
            ));
        }
        for (name, gbs) in [
            ("NoC bisection", self.noc_bisection_gbs),
            ("LLC slice", self.llc_slice_gbs),
            ("DRAM channel", self.dram_channel_gbs),
            ("inter-chip pair", self.interchip_pair_gbs),
        ] {
            if !gbs.is_finite() || gbs <= 0.0 {
                return Err(ConfigError::new(format!(
                    "{name} bandwidth must be finite and positive (got {gbs})"
                )));
            }
        }
        if !self
            .llc_bytes_per_chip
            .is_multiple_of(self.slices_per_chip as u64)
        {
            return Err(ConfigError::new(
                "LLC capacity must divide evenly over slices",
            ));
        }
        let slice_bytes = self.llc_bytes_per_chip / self.slices_per_chip as u64;
        let set_bytes = self.llc_assoc as u64 * self.line_size;
        if !slice_bytes.is_multiple_of(set_bytes) {
            return Err(ConfigError::new(
                "LLC slice must hold a whole number of sets",
            ));
        }
        if !self
            .l1_bytes_per_cluster
            .is_multiple_of(self.l1_assoc as u64 * self.line_size)
        {
            return Err(ConfigError::new("L1 must hold a whole number of sets"));
        }
        if self.sectors_per_line == 0
            || !self.line_size.is_multiple_of(self.sectors_per_line as u64)
        {
            return Err(ConfigError::new("sectors must divide the line size"));
        }
        if self.watchdog_cycles == 0 {
            return Err(ConfigError::new(
                "watchdog window must be positive (use u64::MAX to disable)",
            ));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Derived quantities.
    // ------------------------------------------------------------------

    /// Total LLC capacity of the machine, bytes.
    pub fn total_llc_bytes(&self) -> u64 {
        self.llc_bytes_per_chip * self.chips as u64
    }

    /// LLC slice capacity, bytes.
    pub fn llc_slice_bytes(&self) -> u64 {
        self.llc_bytes_per_chip / self.slices_per_chip as u64
    }

    /// Total LLC slices in the machine.
    pub fn total_slices(&self) -> usize {
        self.chips * self.slices_per_chip
    }

    /// The policy-facing slice of this configuration (see [`PolicyCtx`]).
    pub fn policy_ctx(&self) -> PolicyCtx {
        PolicyCtx {
            chips: self.chips,
            llc_assoc: self.llc_assoc,
            total_slices: self.total_slices(),
            llc_sets_per_chip: (self.llc_bytes_per_chip / (self.llc_assoc as u64 * self.line_size))
                as usize,
            sectored: self.sectored,
            coherence: self.coherence,
        }
    }

    /// Total DRAM bandwidth, GB/s.
    pub fn total_dram_gbs(&self) -> f64 {
        self.dram_channel_gbs * (self.chips * self.channels_per_chip) as f64
    }

    /// Raw LLC bandwidth per chip, GB/s (`B_LLC` of the EAB model).
    pub fn llc_gbs_per_chip(&self) -> f64 {
        self.llc_slice_gbs * self.slices_per_chip as f64
    }

    /// Intra-chip NoC bandwidth per chip, GB/s (`B_intra`).
    pub fn intra_gbs_per_chip(&self) -> f64 {
        self.noc_bisection_gbs
    }

    /// Inter-chip bandwidth available to one chip per direction, GB/s
    /// (`B_inter`): two ring neighbours.
    pub fn inter_gbs_per_chip(&self) -> f64 {
        2.0 * self.interchip_pair_gbs
    }

    /// DRAM bandwidth per chip (one memory partition), GB/s (`B_mem`).
    pub fn mem_gbs_per_chip(&self) -> f64 {
        self.dram_channel_gbs * self.channels_per_chip as f64
    }

    // ------------------------------------------------------------------
    // Ring topology.
    // ------------------------------------------------------------------

    /// The two ring neighbours of `chip` (clockwise, counter-clockwise).
    pub fn ring_neighbors(&self, chip: ChipId) -> (ChipId, ChipId) {
        let n = self.chips;
        let i = chip.index();
        (ChipId(((i + 1) % n) as u8), ChipId(((i + n - 1) % n) as u8))
    }

    /// Number of ring hops between two chips along the shortest path.
    pub fn ring_distance(&self, from: ChipId, to: ChipId) -> usize {
        let n = self.chips;
        let cw = (to.index() + n - from.index()) % n;
        cw.min(n - cw)
    }

    /// The next hop from `from` towards `to` along the shortest ring path.
    /// Ties (diametrically opposite chips) are broken towards the clockwise
    /// direction for even `from`, counter-clockwise for odd `from`, which
    /// balances load over both directions.
    ///
    /// # Panics
    /// Panics if `from == to`.
    pub fn ring_next_hop(&self, from: ChipId, to: ChipId) -> ChipId {
        assert_ne!(from, to, "no hop needed");
        let n = self.chips;
        let cw = (to.index() + n - from.index()) % n;
        let ccw = n - cw;
        let clockwise = match cw.cmp(&ccw) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => from.index().is_multiple_of(2),
        };
        if clockwise {
            ChipId(((from.index() + 1) % n) as u8)
        } else {
            ChipId(((from.index() + n - 1) % n) as u8)
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table3() {
        let c = MachineConfig::paper_baseline();
        c.validate().unwrap();
        assert_eq!(c.chips, 4);
        assert_eq!(c.chips * c.clusters_per_chip * 2, 256); // 256 SMs
        assert_eq!(c.total_llc_bytes(), 16 << 20); // 16 MB LLC
        assert_eq!(c.total_slices(), 64);
        assert!((c.total_dram_gbs() - 1750.0).abs() < 1e-9);
        assert!((c.llc_gbs_per_chip() * 4.0 - 16000.0).abs() < 1e-9); // 16 TB/s
        assert!((c.inter_gbs_per_chip() - 192.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_preserves_ratios() {
        let base = MachineConfig::paper_baseline();
        let s = base.clone().scaled(ScaleFactor::EXPERIMENT);
        s.validate().unwrap();
        // Bandwidth ratios.
        let r0 = base.intra_gbs_per_chip() / base.inter_gbs_per_chip();
        let r1 = s.intra_gbs_per_chip() / s.inter_gbs_per_chip();
        assert!((r0 - r1).abs() < 1e-9);
        // Demand/bandwidth: clusters per chip vs bisection.
        let d0 = base.clusters_per_chip as f64 / base.noc_bisection_gbs;
        let d1 = s.clusters_per_chip as f64 / s.noc_bisection_gbs;
        assert!((d0 - d1).abs() < 1e-9);
        // L1-total : LLC ratio per chip.
        let l0 = (base.clusters_per_chip as u64 * base.l1_bytes_per_cluster) as f64
            / base.llc_bytes_per_chip as f64;
        let l1 = (s.clusters_per_chip as u64 * s.l1_bytes_per_cluster) as f64
            / s.llc_bytes_per_chip as f64;
        assert!((l0 - l1).abs() < 1e-9);
    }

    #[test]
    fn memory_interfaces_rescale_channels() {
        let c = MachineConfig::paper_baseline().with_memory_interface(MemoryInterface::Hbm2);
        assert!((c.total_dram_gbs() - 2800.0).abs() < 1e-6);
        let c = MachineConfig::paper_baseline().with_memory_interface(MemoryInterface::Gddr5);
        assert!((c.total_dram_gbs() - 900.0).abs() < 1e-6);
    }

    #[test]
    fn ring_distance_and_hops() {
        let c = MachineConfig::paper_baseline();
        assert_eq!(c.ring_distance(ChipId(0), ChipId(1)), 1);
        assert_eq!(c.ring_distance(ChipId(0), ChipId(2)), 2);
        assert_eq!(c.ring_distance(ChipId(0), ChipId(3)), 1);
        assert_eq!(c.ring_distance(ChipId(3), ChipId(0)), 1);
        // Next hop always reduces distance.
        for a in ChipId::all(4) {
            for b in ChipId::all(4) {
                if a == b {
                    continue;
                }
                let hop = c.ring_next_hop(a, b);
                if hop != b {
                    assert!(c.ring_distance(hop, b) < c.ring_distance(a, b));
                } else {
                    assert_eq!(c.ring_distance(a, b), 1);
                }
            }
        }
    }

    #[test]
    fn two_chip_ring() {
        let mut c = MachineConfig::paper_baseline();
        c.chips = 2;
        c.validate().unwrap();
        assert_eq!(c.ring_distance(ChipId(0), ChipId(1)), 1);
        assert_eq!(c.ring_next_hop(ChipId(0), ChipId(1)), ChipId(1));
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = MachineConfig::paper_baseline();
        c.page_size = 64; // < line size
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_baseline();
        c.chips = 1;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_baseline();
        c.sectors_per_line = 3;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_baseline();
        c.watchdog_cycles = 0;
        assert!(c.validate().is_err());
        c.watchdog_cycles = u64::MAX; // disabled, still valid
        assert!(c.validate().is_ok());
    }

    #[test]
    fn llc_org_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            LlcOrgKind::ALL.iter().map(|o| o.label()).collect();
        assert_eq!(labels.len(), 5);
        assert_eq!(LlcOrgKind::Sac.to_string(), "SAC");
        for org in LlcOrgKind::ALL {
            assert_eq!(LlcOrgKind::from_label(org.label()), Some(org));
        }
        assert_eq!(LlcOrgKind::from_label("bogus"), None);
    }
}
