//! Machine configuration (Table 3 of the paper) and design-space scaling.
//!
//! All bandwidths are stored in GB/s. The simulated GPU clock is 1 GHz, so
//! **1 GB/s equals exactly 1 byte/cycle** — the simulator consumes these
//! values directly as per-cycle byte budgets.

use crate::error::ConfigError;
use crate::ids::ChipId;

/// Bandwidth unit marker: 1 GB/s == 1 byte/cycle at the 1 GHz GPU clock.
pub const GB_S: f64 = 1.0;

/// The five LLC organizations compared in the paper's evaluation (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LlcOrgKind {
    /// Baseline: each slice caches data of the local memory partition on
    /// behalf of all chips (Fig. 3a).
    MemorySide,
    /// Two-NoC SM-side organization: each chip's slices cache whatever its
    /// own SMs access, local or remote (Fig. 3b).
    SmSide,
    /// The L1.5 "Static LLC" of Arunkumar et al.: half the capacity caches
    /// local data, half caches remote data.
    StaticHalf,
    /// The Dynamic LLC of Milic et al.: the local/remote way split adapts at
    /// run time to balance local-memory vs inter-chip bandwidth.
    Dynamic,
    /// Sharing-Aware Caching: per-kernel choice between `MemorySide` and
    /// `SmSide` driven by the EAB model.
    Sac,
}

impl LlcOrgKind {
    /// All five organizations, in the paper's presentation order.
    pub const ALL: [LlcOrgKind; 5] = [
        LlcOrgKind::MemorySide,
        LlcOrgKind::SmSide,
        LlcOrgKind::StaticHalf,
        LlcOrgKind::Dynamic,
        LlcOrgKind::Sac,
    ];

    /// Short label used in reports and figure output.
    pub fn label(self) -> &'static str {
        match self {
            LlcOrgKind::MemorySide => "memory-side",
            LlcOrgKind::SmSide => "SM-side",
            LlcOrgKind::StaticHalf => "static",
            LlcOrgKind::Dynamic => "dynamic",
            LlcOrgKind::Sac => "SAC",
        }
    }

    /// Inverse of [`LlcOrgKind::label`], for reading journals and CLI args.
    pub fn from_label(label: &str) -> Option<LlcOrgKind> {
        LlcOrgKind::ALL.into_iter().find(|o| o.label() == label)
    }
}

impl std::fmt::Display for LlcOrgKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Coherence protocol for SM-side-capable configurations (§5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoherenceKind {
    /// Software-managed: flush + invalidate at kernel boundaries (baseline).
    #[default]
    Software,
    /// Hardware directory: sharers tracked at the home partition; a write
    /// invalidates all remote copies.
    Hardware,
}

/// The slice of a [`MachineConfig`] that LLC-organization policies consult
/// when making routing, fill, way-partition and kernel-boundary decisions.
///
/// Extracted once at simulator-build time ([`MachineConfig::policy_ctx`]) so
/// a policy carries only the structural facts its decisions depend on, never
/// the full machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PolicyCtx {
    /// Number of chips in the machine.
    pub chips: usize,
    /// LLC associativity (ways per set) — the domain of a way split.
    pub llc_assoc: usize,
    /// Total LLC slices machine-wide.
    pub total_slices: usize,
    /// LLC sets per chip (capacity ÷ ways ÷ line size).
    pub llc_sets_per_chip: usize,
    /// Whether the LLC tracks per-sector validity.
    pub sectored: bool,
    /// The coherence scheme enforced at kernel boundaries.
    pub coherence: CoherenceKind,
}

/// Inter-chip fabric topology connecting the package's GPU chips.
///
/// The structural facts (neighbor sets, canonical link list, degrees) live
/// here on [`MachineConfig`] so that validation, fault plans and the
/// checkpoint fingerprint agree with the behavioral implementation in
/// `mcgpu-noc` without a dependency cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TopologyKind {
    /// Bidirectional ring (the paper's Table 3 machine).
    #[default]
    Ring,
    /// Every chip pair is directly linked.
    FullyConnected,
    /// 2D mesh on a `rows x cols` grid (balanced factorization of the chip
    /// count, row-major chip placement).
    Mesh2D,
}

impl TopologyKind {
    /// All topologies, in presentation order.
    pub const ALL: [TopologyKind; 3] = [
        TopologyKind::Ring,
        TopologyKind::FullyConnected,
        TopologyKind::Mesh2D,
    ];

    /// Short label used in reports, figure output and CLI args.
    pub fn label(self) -> &'static str {
        match self {
            TopologyKind::Ring => "ring",
            TopologyKind::FullyConnected => "full",
            TopologyKind::Mesh2D => "mesh2d",
        }
    }

    /// Inverse of [`TopologyKind::label`], with a few CLI-friendly aliases.
    pub fn from_label(label: &str) -> Option<TopologyKind> {
        match label {
            "ring" => Some(TopologyKind::Ring),
            "full" | "fully-connected" | "all-to-all" => Some(TopologyKind::FullyConnected),
            "mesh2d" | "mesh" => Some(TopologyKind::Mesh2D),
            _ => None,
        }
    }
}

impl std::fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Memory interface generation (Fig. 14 "memory interface" sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemoryInterface {
    /// GDDR5-class: 0.9 TB/s aggregate.
    Gddr5,
    /// GDDR6-class: 1.75 TB/s aggregate (baseline).
    #[default]
    Gddr6,
    /// HBM2-class: 2.8 TB/s aggregate.
    Hbm2,
}

impl MemoryInterface {
    /// Aggregate DRAM bandwidth of the whole machine, in GB/s.
    pub fn total_gbs(self) -> f64 {
        match self {
            MemoryInterface::Gddr5 => 900.0,
            MemoryInterface::Gddr6 => 1750.0,
            MemoryInterface::Hbm2 => 2800.0,
        }
    }

    /// Label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            MemoryInterface::Gddr5 => "GDDR5",
            MemoryInterface::Gddr6 => "GDDR6",
            MemoryInterface::Hbm2 => "HBM2",
        }
    }
}

/// Uniform down-scaling of the simulated machine so full figure sweeps run in
/// minutes instead of days.
///
/// * `topology` divides unit counts (SM clusters, LLC slices, DRAM channels
///   per chip) and aggregate bandwidths (NoC bisection, inter-chip links) —
///   per-unit bandwidths are unchanged, so every bandwidth *ratio* the
///   paper's EAB argument rests on is preserved.
/// * `capacity` divides storage capacities (LLC) and, in `mcgpu-trace`,
///   workload footprints — so every working-set ÷ capacity ratio is
///   preserved. L1 capacity is scaled by `capacity / topology` so the total
///   L1 : LLC ratio per chip is also preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScaleFactor {
    /// Divisor for unit counts and aggregate bandwidths.
    pub topology: u32,
    /// Divisor for capacities and workload footprints.
    pub capacity: u32,
}

impl ScaleFactor {
    /// No scaling: the exact Table 3 machine.
    pub const UNIT: ScaleFactor = ScaleFactor {
        topology: 1,
        capacity: 1,
    };

    /// The default scale used by the experiment harness: 8 SM clusters,
    /// 4 LLC slices and 2 DRAM channels per chip; capacities and footprints
    /// divided by 16.
    pub const EXPERIMENT: ScaleFactor = ScaleFactor {
        topology: 4,
        capacity: 16,
    };
}

impl Default for ScaleFactor {
    fn default() -> Self {
        ScaleFactor::UNIT
    }
}

/// Full machine configuration (Table 3 plus latency parameters).
///
/// Construct with [`MachineConfig::paper_baseline`] (unscaled Table 3) or
/// [`MachineConfig::experiment_baseline`] (scaled for fast sweeps) and adjust
/// fields before calling [`MachineConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of GPU chips (Table 3: 4).
    pub chips: usize,
    /// SM clusters per chip; one cluster is two SMs sharing a NoC port.
    pub clusters_per_chip: usize,
    /// LLC slices per chip.
    pub slices_per_chip: usize,
    /// DRAM channels per chip (one memory partition per chip).
    pub channels_per_chip: usize,

    /// Cache line size in bytes (128).
    pub line_size: u64,
    /// Memory page size in bytes (4 KiB, first-touch allocated).
    pub page_size: u64,
    /// Sectors per cache line when `sectored` is set (4).
    pub sectors_per_line: u32,
    /// Whether caches are sectored (Fig. 14 sweep; baseline: conventional).
    pub sectored: bool,

    /// Private L1 capacity per SM cluster, bytes.
    pub l1_bytes_per_cluster: u64,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// LLC capacity per chip, bytes (4 MiB).
    pub llc_bytes_per_chip: u64,
    /// LLC associativity.
    pub llc_assoc: usize,

    /// Intra-chip NoC bisection bandwidth per chip, GB/s (4 TB/s).
    pub noc_bisection_gbs: f64,
    /// Per-LLC-slice bandwidth, GB/s (16 TB/s ÷ 64 slices = 250).
    pub llc_slice_gbs: f64,
    /// Per-DRAM-channel bandwidth, GB/s (1.75 TB/s ÷ 32 = 54.6875).
    pub dram_channel_gbs: f64,
    /// Inter-chip bandwidth per adjacent chip pair, per direction, GB/s.
    /// Baseline: 3 links × 64 GB/s bidirectional = 96 GB/s per direction.
    pub interchip_pair_gbs: f64,
    /// Physical links per adjacent pair in the ring (3).
    pub links_per_pair: usize,
    /// Inter-chip fabric topology (Table 3: a 4-chip ring).
    pub topology: TopologyKind,

    /// L1 hit latency, cycles.
    pub l1_hit_latency: u64,
    /// One-way intra-chip NoC traversal latency, cycles.
    pub noc_latency: u64,
    /// LLC access latency, cycles.
    pub llc_latency: u64,
    /// DRAM access latency, cycles.
    pub dram_latency: u64,
    /// One-way inter-chip hop latency, cycles.
    pub link_latency: u64,

    /// Outstanding-miss registers per SM cluster.
    pub mshrs_per_cluster: usize,
    /// Memory instructions an SM cluster can issue per cycle.
    pub issue_width: usize,

    /// Coherence protocol for SM-side configurations.
    pub coherence: CoherenceKind,
    /// Memory interface generation (adjusts `dram_channel_gbs`).
    pub memory_interface: MemoryInterface,
    /// Scale applied relative to Table 3.
    pub scale: ScaleFactor,

    /// Forward-progress watchdog window, cycles: the engine reports a
    /// deadlock if no request retires and no queue drains for this many
    /// consecutive cycles. `u64::MAX` disables the watchdog entirely.
    pub watchdog_cycles: u64,
}

impl MachineConfig {
    /// The unscaled Table 3 baseline.
    pub fn paper_baseline() -> Self {
        MachineConfig {
            chips: 4,
            clusters_per_chip: 32,
            slices_per_chip: 16,
            channels_per_chip: 8,
            line_size: 128,
            page_size: 4096,
            sectors_per_line: 4,
            sectored: false,
            l1_bytes_per_cluster: 256 << 10, // 2 SMs x 128 KB
            l1_assoc: 8,
            llc_bytes_per_chip: 4 << 20,
            llc_assoc: 16,
            noc_bisection_gbs: 4096.0,
            llc_slice_gbs: 250.0,
            dram_channel_gbs: 1750.0 / 32.0,
            interchip_pair_gbs: 96.0,
            links_per_pair: 3,
            topology: TopologyKind::Ring,
            l1_hit_latency: 28,
            noc_latency: 20,
            llc_latency: 90,
            dram_latency: 250,
            link_latency: 80,
            mshrs_per_cluster: 64,
            issue_width: 1,
            coherence: CoherenceKind::Software,
            memory_interface: MemoryInterface::Gddr6,
            scale: ScaleFactor::UNIT,
            watchdog_cycles: 1_000_000,
        }
    }

    /// The scaled baseline used by the experiment harness
    /// ([`ScaleFactor::EXPERIMENT`]).
    pub fn experiment_baseline() -> Self {
        Self::paper_baseline().scaled(ScaleFactor::EXPERIMENT)
    }

    /// Apply a [`ScaleFactor`], producing a smaller machine with identical
    /// bandwidth and capacity ratios (see [`ScaleFactor`] docs).
    ///
    /// # Panics
    /// Panics if scaling would reduce any unit count below one.
    pub fn scaled(mut self, scale: ScaleFactor) -> Self {
        let t = scale.topology as usize;
        let c = scale.capacity as u64;
        assert!(t >= 1 && c >= 1, "scale factors must be >= 1");
        assert!(
            self.clusters_per_chip >= t && self.slices_per_chip >= t && self.channels_per_chip >= t,
            "topology scale too large for machine"
        );
        self.clusters_per_chip /= t;
        self.slices_per_chip /= t;
        self.channels_per_chip = (self.channels_per_chip / t).max(1);
        self.noc_bisection_gbs /= t as f64;
        self.interchip_pair_gbs /= t as f64;
        self.llc_bytes_per_chip /= c;
        // Keep total-L1 : LLC per chip constant: clusters shrank by t, so the
        // per-cluster L1 only shrinks by c / t.
        self.l1_bytes_per_cluster = self.l1_bytes_per_cluster * t as u64 / c;
        // Keep the chip's total outstanding-miss capability (and hence its
        // latency-tolerance : bandwidth ratio) constant: fewer clusters each
        // get proportionally more MSHRs.
        self.mshrs_per_cluster *= t;
        self.scale = scale;
        self
    }

    /// Override the memory interface, rescaling per-channel DRAM bandwidth.
    pub fn with_memory_interface(mut self, iface: MemoryInterface) -> Self {
        let baseline_total = MemoryInterface::Gddr6.total_gbs();
        let factor = iface.total_gbs() / baseline_total;
        self.dram_channel_gbs = (1750.0 / 32.0) * factor;
        self.memory_interface = iface;
        self
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.chips < 2 {
            return Err(ConfigError::new("need at least 2 chips"));
        }
        if self.chips > 64 {
            return Err(ConfigError::new(
                "sharer tracking supports at most 64 chips",
            ));
        }
        // The CRD packs one presence bit per chip (per sector when
        // sectored) into a 128-bit field.
        let presence_bits = self.chips as u64
            * if self.sectored {
                self.sectors_per_line as u64
            } else {
                1
            };
        if presence_bits > 128 {
            return Err(ConfigError::new(format!(
                "CRD presence vector needs {presence_bits} bits (chips x sectors), limit is 128"
            )));
        }
        if !self.line_size.is_power_of_two() || !self.page_size.is_power_of_two() {
            return Err(ConfigError::new(
                "line and page sizes must be powers of two",
            ));
        }
        if self.page_size < self.line_size {
            return Err(ConfigError::new("page size must be >= line size"));
        }
        if self.slices_per_chip == 0 || self.clusters_per_chip == 0 || self.channels_per_chip == 0 {
            return Err(ConfigError::new("unit counts must be positive"));
        }
        if self.l1_assoc == 0 || self.llc_assoc == 0 {
            return Err(ConfigError::new("cache associativities must be positive"));
        }
        if self.mshrs_per_cluster == 0 || self.issue_width == 0 || self.links_per_pair == 0 {
            return Err(ConfigError::new(
                "MSHRs, issue width and links per pair must be positive",
            ));
        }
        for (name, gbs) in [
            ("NoC bisection", self.noc_bisection_gbs),
            ("LLC slice", self.llc_slice_gbs),
            ("DRAM channel", self.dram_channel_gbs),
            ("inter-chip pair", self.interchip_pair_gbs),
        ] {
            if !gbs.is_finite() || gbs <= 0.0 {
                return Err(ConfigError::new(format!(
                    "{name} bandwidth must be finite and positive (got {gbs})"
                )));
            }
        }
        if !self
            .llc_bytes_per_chip
            .is_multiple_of(self.slices_per_chip as u64)
        {
            return Err(ConfigError::new(
                "LLC capacity must divide evenly over slices",
            ));
        }
        let slice_bytes = self.llc_bytes_per_chip / self.slices_per_chip as u64;
        let set_bytes = self.llc_assoc as u64 * self.line_size;
        if !slice_bytes.is_multiple_of(set_bytes) {
            return Err(ConfigError::new(
                "LLC slice must hold a whole number of sets",
            ));
        }
        if !self
            .l1_bytes_per_cluster
            .is_multiple_of(self.l1_assoc as u64 * self.line_size)
        {
            return Err(ConfigError::new("L1 must hold a whole number of sets"));
        }
        if self.sectors_per_line == 0
            || !self.line_size.is_multiple_of(self.sectors_per_line as u64)
        {
            return Err(ConfigError::new("sectors must divide the line size"));
        }
        if self.watchdog_cycles == 0 {
            return Err(ConfigError::new(
                "watchdog window must be positive (use u64::MAX to disable)",
            ));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Derived quantities.
    // ------------------------------------------------------------------

    /// Total LLC capacity of the machine, bytes.
    pub fn total_llc_bytes(&self) -> u64 {
        self.llc_bytes_per_chip * self.chips as u64
    }

    /// LLC slice capacity, bytes.
    pub fn llc_slice_bytes(&self) -> u64 {
        self.llc_bytes_per_chip / self.slices_per_chip as u64
    }

    /// Total LLC slices in the machine.
    pub fn total_slices(&self) -> usize {
        self.chips * self.slices_per_chip
    }

    /// The policy-facing slice of this configuration (see [`PolicyCtx`]).
    pub fn policy_ctx(&self) -> PolicyCtx {
        PolicyCtx {
            chips: self.chips,
            llc_assoc: self.llc_assoc,
            total_slices: self.total_slices(),
            llc_sets_per_chip: (self.llc_bytes_per_chip / (self.llc_assoc as u64 * self.line_size))
                as usize,
            sectored: self.sectored,
            coherence: self.coherence,
        }
    }

    /// Total DRAM bandwidth, GB/s.
    pub fn total_dram_gbs(&self) -> f64 {
        self.dram_channel_gbs * (self.chips * self.channels_per_chip) as f64
    }

    /// Raw LLC bandwidth per chip, GB/s (`B_LLC` of the EAB model).
    pub fn llc_gbs_per_chip(&self) -> f64 {
        self.llc_slice_gbs * self.slices_per_chip as f64
    }

    /// Intra-chip NoC bandwidth per chip, GB/s (`B_intra`).
    pub fn intra_gbs_per_chip(&self) -> f64 {
        self.noc_bisection_gbs
    }

    /// Inter-chip bandwidth available to one chip per direction, GB/s
    /// (`B_inter`): the mean chip degree times the per-pair bandwidth
    /// (exactly two ring neighbours on the baseline ring).
    pub fn inter_gbs_per_chip(&self) -> f64 {
        self.mean_degree() * self.interchip_pair_gbs
    }

    /// DRAM bandwidth per chip (one memory partition), GB/s (`B_mem`).
    pub fn mem_gbs_per_chip(&self) -> f64 {
        self.dram_channel_gbs * self.channels_per_chip as f64
    }

    // ------------------------------------------------------------------
    // Inter-chip topology (structure; behavior lives in `mcgpu-noc`).
    // ------------------------------------------------------------------

    /// Mesh grid dimensions `(rows, cols)` for [`TopologyKind::Mesh2D`]:
    /// the most balanced factorization of the chip count with
    /// `rows <= cols`, chips placed row-major (chip `i` at row `i / cols`,
    /// column `i % cols`).
    pub fn mesh_dims(&self) -> (usize, usize) {
        let n = self.chips.max(1);
        let mut rows = 1;
        let mut d = 1;
        while d * d <= n {
            if n.is_multiple_of(d) {
                rows = d;
            }
            d += 1;
        }
        (rows, n / rows)
    }

    /// The ordered neighbor list of `chip` under the configured topology.
    /// The order is the fabric's deterministic slot order; for the ring it
    /// is `[clockwise, counter-clockwise]` (both slots point at the same
    /// chip on a 2-chip ring — two parallel links).
    pub fn neighbor_list(&self, chip: ChipId) -> Vec<ChipId> {
        let n = self.chips;
        let i = chip.index();
        match self.topology {
            TopologyKind::Ring => {
                let (cw, ccw) = self.ring_neighbors(chip);
                vec![cw, ccw]
            }
            TopologyKind::FullyConnected => (0..n)
                .filter(|&j| j != i)
                .map(|j| ChipId(j as u8))
                .collect(),
            TopologyKind::Mesh2D => {
                let (rows, cols) = self.mesh_dims();
                let (r, c) = (i / cols, i % cols);
                let mut out = Vec::with_capacity(4);
                if r > 0 {
                    out.push(ChipId(((r - 1) * cols + c) as u8));
                }
                if r + 1 < rows {
                    out.push(ChipId(((r + 1) * cols + c) as u8));
                }
                if c > 0 {
                    out.push(ChipId((r * cols + c - 1) as u8));
                }
                if c + 1 < cols {
                    out.push(ChipId((r * cols + c + 1) as u8));
                }
                out
            }
        }
    }

    /// Whether `a` and `b` are directly linked under the configured
    /// topology (false for `a == b`).
    pub fn is_adjacent(&self, a: ChipId, b: ChipId) -> bool {
        a != b
            && a.index() < self.chips
            && b.index() < self.chips
            && match self.topology {
                TopologyKind::Ring => self.ring_distance(a, b) == 1,
                TopologyKind::FullyConnected => true,
                TopologyKind::Mesh2D => self.neighbor_list(a).contains(&b),
            }
    }

    /// The canonical undirected link list of the configured topology. The
    /// index of a pair in this list is its [`MachineConfig::link_index`];
    /// the ring lists link `i` as `(i, (i+1) mod n)`, so a 2-chip ring has
    /// two parallel `{0, 1}` links.
    pub fn link_pairs(&self) -> Vec<(ChipId, ChipId)> {
        let n = self.chips;
        match self.topology {
            TopologyKind::Ring => (0..n)
                .map(|i| (ChipId(i as u8), ChipId(((i + 1) % n) as u8)))
                .collect(),
            TopologyKind::FullyConnected => {
                let mut out = Vec::with_capacity(n * (n - 1) / 2);
                for a in 0..n {
                    for b in (a + 1)..n {
                        out.push((ChipId(a as u8), ChipId(b as u8)));
                    }
                }
                out
            }
            TopologyKind::Mesh2D => {
                let (_, cols) = self.mesh_dims();
                let mut out = Vec::new();
                for i in 0..n {
                    let (r, c) = (i / cols, i % cols);
                    if c + 1 < cols {
                        out.push((ChipId(i as u8), ChipId((i + 1) as u8)));
                    }
                    let _ = r;
                    if i + cols < n {
                        out.push((ChipId(i as u8), ChipId((i + cols) as u8)));
                    }
                }
                out
            }
        }
    }

    /// Number of undirected links in the configured topology.
    pub fn num_links(&self) -> usize {
        match self.topology {
            TopologyKind::Ring => self.chips,
            TopologyKind::FullyConnected => self.chips * (self.chips - 1) / 2,
            TopologyKind::Mesh2D => self.link_pairs().len(),
        }
    }

    /// Index of the undirected link `{a, b}` in the canonical link list,
    /// or `None` when the chips are not directly linked. For the ring this
    /// reproduces the legacy fault-path indexing: link `i` connects chip
    /// `i` to `(i+1) mod n`, with the wrap pair `{0, n-1}` at index `n-1`.
    pub fn link_index(&self, a: ChipId, b: ChipId) -> Option<usize> {
        if !self.is_adjacent(a, b) {
            return None;
        }
        match self.topology {
            TopologyKind::Ring => {
                let (lo, hi) = if a.index() < b.index() {
                    (a.index(), b.index())
                } else {
                    (b.index(), a.index())
                };
                Some(if lo == 0 && hi == self.chips - 1 {
                    hi
                } else {
                    lo
                })
            }
            _ => {
                let key = if a.index() < b.index() {
                    (a, b)
                } else {
                    (b, a)
                };
                self.link_pairs().iter().position(|&p| p == key)
            }
        }
    }

    /// Number of fabric links attached to `chip` (2 on any ring, including
    /// the two parallel links of a 2-chip ring).
    pub fn chip_degree(&self, chip: ChipId) -> usize {
        self.neighbor_list(chip).len()
    }

    /// The largest per-chip degree (the fabric port count the NoC physical
    /// model provisions for).
    pub fn max_chip_degree(&self) -> usize {
        ChipId::all(self.chips)
            .map(|c| self.chip_degree(c))
            .max()
            .unwrap_or(0)
    }

    /// Mean chip degree: `2 x links / chips` (exactly 2 on any ring).
    pub fn mean_degree(&self) -> f64 {
        2.0 * self.num_links() as f64 / self.chips as f64
    }

    /// Inter-chip bisection bandwidth of the configured topology per
    /// direction, GB/s: the minimum link capacity crossing a balanced cut.
    pub fn bisection_gbs(&self) -> f64 {
        let n = self.chips;
        let links_cut = match self.topology {
            TopologyKind::Ring => 2,
            TopologyKind::FullyConnected => (n / 2) * n.div_ceil(2),
            TopologyKind::Mesh2D => {
                let (rows, cols) = self.mesh_dims();
                if cols >= 2 {
                    rows
                } else {
                    cols
                }
            }
        };
        links_cut as f64 * self.interchip_pair_gbs
    }

    /// Egress bandwidth of one chip into the fabric, GB/s: its degree
    /// times the per-pair bandwidth (`2 x interchip_pair_gbs` on the ring).
    pub fn egress_gbs(&self, chip: ChipId) -> f64 {
        self.chip_degree(chip) as f64 * self.interchip_pair_gbs
    }

    /// The two ring neighbours of `chip` (clockwise, counter-clockwise).
    pub fn ring_neighbors(&self, chip: ChipId) -> (ChipId, ChipId) {
        let n = self.chips;
        let i = chip.index();
        (ChipId(((i + 1) % n) as u8), ChipId(((i + n - 1) % n) as u8))
    }

    /// Number of ring hops between two chips along the shortest path.
    pub fn ring_distance(&self, from: ChipId, to: ChipId) -> usize {
        let n = self.chips;
        let cw = (to.index() + n - from.index()) % n;
        cw.min(n - cw)
    }

    /// The next hop from `from` towards `to` along the shortest ring path.
    /// Ties (diametrically opposite chips) are broken towards the clockwise
    /// direction for even `from`, counter-clockwise for odd `from`, which
    /// balances load over both directions.
    ///
    /// # Panics
    /// Panics if `from == to`.
    pub fn ring_next_hop(&self, from: ChipId, to: ChipId) -> ChipId {
        assert_ne!(from, to, "no hop needed");
        let n = self.chips;
        let cw = (to.index() + n - from.index()) % n;
        let ccw = n - cw;
        let clockwise = match cw.cmp(&ccw) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => from.index().is_multiple_of(2),
        };
        if clockwise {
            ChipId(((from.index() + 1) % n) as u8)
        } else {
            ChipId(((from.index() + n - 1) % n) as u8)
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table3() {
        let c = MachineConfig::paper_baseline();
        c.validate().unwrap();
        assert_eq!(c.chips, 4);
        assert_eq!(c.chips * c.clusters_per_chip * 2, 256); // 256 SMs
        assert_eq!(c.total_llc_bytes(), 16 << 20); // 16 MB LLC
        assert_eq!(c.total_slices(), 64);
        assert!((c.total_dram_gbs() - 1750.0).abs() < 1e-9);
        assert!((c.llc_gbs_per_chip() * 4.0 - 16000.0).abs() < 1e-9); // 16 TB/s
        assert!((c.inter_gbs_per_chip() - 192.0).abs() < 1e-9);
    }

    #[test]
    fn topology_labels_round_trip() {
        for kind in TopologyKind::ALL {
            assert_eq!(TopologyKind::from_label(kind.label()), Some(kind));
            assert_eq!(format!("{kind}"), kind.label());
        }
        assert_eq!(TopologyKind::from_label("mesh"), Some(TopologyKind::Mesh2D));
        assert_eq!(TopologyKind::from_label("torus"), None);
    }

    #[test]
    fn mesh_dims_are_balanced() {
        let mut c = MachineConfig::paper_baseline();
        c.topology = TopologyKind::Mesh2D;
        for (chips, dims) in [
            (4, (2, 2)),
            (8, (2, 4)),
            (16, (4, 4)),
            (6, (2, 3)),
            (5, (1, 5)),
        ] {
            c.chips = chips;
            assert_eq!(c.mesh_dims(), dims, "chips={chips}");
        }
    }

    #[test]
    fn ring_helpers_match_legacy_ring_semantics() {
        let mut c = MachineConfig::paper_baseline();
        for chips in [2usize, 3, 4, 8] {
            c.chips = chips;
            assert_eq!(c.num_links(), chips);
            assert!((c.mean_degree() - 2.0).abs() == 0.0);
            for chip in ChipId::all(chips) {
                let (cw, ccw) = c.ring_neighbors(chip);
                assert_eq!(c.neighbor_list(chip), vec![cw, ccw]);
                assert_eq!(c.chip_degree(chip), 2);
                assert!((c.egress_gbs(chip) - 2.0 * c.interchip_pair_gbs).abs() < 1e-12);
            }
            // Legacy fault-path link indexing: link i = {i, i+1 mod n},
            // wrap pair at index n-1.
            for i in 0..chips {
                let a = ChipId(i as u8);
                let b = ChipId(((i + 1) % chips) as u8);
                let expect = {
                    let (lo, hi) = (a.index().min(b.index()), a.index().max(b.index()));
                    if lo == 0 && hi == chips - 1 {
                        hi
                    } else {
                        lo
                    }
                };
                assert_eq!(c.link_index(a, b), Some(expect));
                assert_eq!(c.link_index(b, a), Some(expect));
            }
        }
        c.chips = 4;
        assert_eq!(c.link_index(ChipId(0), ChipId(2)), None);
        assert_eq!(c.link_index(ChipId(1), ChipId(1)), None);
    }

    #[test]
    fn link_pairs_and_link_index_agree_across_topologies() {
        let mut c = MachineConfig::paper_baseline();
        for kind in TopologyKind::ALL {
            c.topology = kind;
            for chips in [2usize, 4, 6, 8, 16] {
                c.chips = chips;
                let pairs = c.link_pairs();
                assert_eq!(pairs.len(), c.num_links(), "{kind} chips={chips}");
                if kind != TopologyKind::Ring {
                    for (idx, &(a, b)) in pairs.iter().enumerate() {
                        assert!(c.is_adjacent(a, b), "{kind} {a:?}-{b:?}");
                        assert_eq!(c.link_index(a, b), Some(idx));
                        assert_eq!(c.link_index(b, a), Some(idx));
                    }
                }
                // Degree/link handshake: sum of degrees == 2 x links.
                let degree_sum: usize = ChipId::all(chips).map(|ch| c.chip_degree(ch)).sum();
                assert_eq!(degree_sum, 2 * pairs.len(), "{kind} chips={chips}");
                assert!(c.max_chip_degree() >= 1);
            }
        }
    }

    #[test]
    fn fully_connected_and_mesh_structure() {
        let mut c = MachineConfig::paper_baseline();
        c.topology = TopologyKind::FullyConnected;
        c.chips = 4;
        assert_eq!(c.num_links(), 6);
        assert!(c.is_adjacent(ChipId(0), ChipId(2)));
        assert_eq!(
            c.neighbor_list(ChipId(1)),
            vec![ChipId(0), ChipId(2), ChipId(3)]
        );
        assert!((c.bisection_gbs() - 4.0 * c.interchip_pair_gbs).abs() < 1e-12);

        c.topology = TopologyKind::Mesh2D;
        // 2x2 mesh: a 4-cycle, no diagonal links.
        assert_eq!(c.num_links(), 4);
        assert!(!c.is_adjacent(ChipId(0), ChipId(3)));
        assert!(c.is_adjacent(ChipId(0), ChipId(1)));
        assert!(c.is_adjacent(ChipId(0), ChipId(2)));
        // 2x4 mesh: corner degree 2, edge degree 3.
        c.chips = 8;
        assert_eq!(c.chip_degree(ChipId(0)), 2);
        assert_eq!(c.chip_degree(ChipId(1)), 3);
        assert_eq!(c.max_chip_degree(), 3);
        assert!((c.bisection_gbs() - 2.0 * c.interchip_pair_gbs).abs() < 1e-12);
    }

    #[test]
    fn validation_bounds_chip_count_by_presence_bits() {
        let mut c = MachineConfig::paper_baseline();
        c.chips = 16;
        c.validate().unwrap();
        c.chips = 65;
        assert!(c.validate().is_err());
        // Sectored CRD packs chips x sectors presence bits into 128.
        c.chips = 64;
        c.sectored = true;
        c.sectors_per_line = 4;
        assert!(c.validate().is_err());
        c.chips = 32;
        c.validate().unwrap();
    }

    #[test]
    fn scaling_preserves_ratios() {
        let base = MachineConfig::paper_baseline();
        let s = base.clone().scaled(ScaleFactor::EXPERIMENT);
        s.validate().unwrap();
        // Bandwidth ratios.
        let r0 = base.intra_gbs_per_chip() / base.inter_gbs_per_chip();
        let r1 = s.intra_gbs_per_chip() / s.inter_gbs_per_chip();
        assert!((r0 - r1).abs() < 1e-9);
        // Demand/bandwidth: clusters per chip vs bisection.
        let d0 = base.clusters_per_chip as f64 / base.noc_bisection_gbs;
        let d1 = s.clusters_per_chip as f64 / s.noc_bisection_gbs;
        assert!((d0 - d1).abs() < 1e-9);
        // L1-total : LLC ratio per chip.
        let l0 = (base.clusters_per_chip as u64 * base.l1_bytes_per_cluster) as f64
            / base.llc_bytes_per_chip as f64;
        let l1 = (s.clusters_per_chip as u64 * s.l1_bytes_per_cluster) as f64
            / s.llc_bytes_per_chip as f64;
        assert!((l0 - l1).abs() < 1e-9);
    }

    #[test]
    fn memory_interfaces_rescale_channels() {
        let c = MachineConfig::paper_baseline().with_memory_interface(MemoryInterface::Hbm2);
        assert!((c.total_dram_gbs() - 2800.0).abs() < 1e-6);
        let c = MachineConfig::paper_baseline().with_memory_interface(MemoryInterface::Gddr5);
        assert!((c.total_dram_gbs() - 900.0).abs() < 1e-6);
    }

    #[test]
    fn ring_distance_and_hops() {
        let c = MachineConfig::paper_baseline();
        assert_eq!(c.ring_distance(ChipId(0), ChipId(1)), 1);
        assert_eq!(c.ring_distance(ChipId(0), ChipId(2)), 2);
        assert_eq!(c.ring_distance(ChipId(0), ChipId(3)), 1);
        assert_eq!(c.ring_distance(ChipId(3), ChipId(0)), 1);
        // Next hop always reduces distance.
        for a in ChipId::all(4) {
            for b in ChipId::all(4) {
                if a == b {
                    continue;
                }
                let hop = c.ring_next_hop(a, b);
                if hop != b {
                    assert!(c.ring_distance(hop, b) < c.ring_distance(a, b));
                } else {
                    assert_eq!(c.ring_distance(a, b), 1);
                }
            }
        }
    }

    #[test]
    fn two_chip_ring() {
        let mut c = MachineConfig::paper_baseline();
        c.chips = 2;
        c.validate().unwrap();
        assert_eq!(c.ring_distance(ChipId(0), ChipId(1)), 1);
        assert_eq!(c.ring_next_hop(ChipId(0), ChipId(1)), ChipId(1));
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = MachineConfig::paper_baseline();
        c.page_size = 64; // < line size
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_baseline();
        c.chips = 1;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_baseline();
        c.sectors_per_line = 3;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_baseline();
        c.watchdog_cycles = 0;
        assert!(c.validate().is_err());
        c.watchdog_cycles = u64::MAX; // disabled, still valid
        assert!(c.validate().is_ok());
    }

    #[test]
    fn llc_org_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            LlcOrgKind::ALL.iter().map(|o| o.label()).collect();
        assert_eq!(labels.len(), 5);
        assert_eq!(LlcOrgKind::Sac.to_string(), "SAC");
        for org in LlcOrgKind::ALL {
            assert_eq!(LlcOrgKind::from_label(org.label()), Some(org));
        }
        assert_eq!(LlcOrgKind::from_label("bogus"), None);
    }
}
