//! Error types.
//!
//! The unified failure taxonomy for the workspace. Every layer defines its
//! errors here or (for layers above `types`, e.g. the simulation engine)
//! wraps these in its own enum with `From` conversions, so that a sweep
//! cell's failure can always be reported as one typed value rather than a
//! stringly panic payload:
//!
//! - [`ConfigError`] — a machine/workload configuration is inconsistent.
//! - [`TraceError`] — a benchmark or trace request cannot be satisfied
//!   (unknown profile name, empty workload).
//! - [`ParseError`] — malformed input to one of the hand-rolled readers
//!   (canonical stats JSON, the sweep run journal).
//! - [`JournalError`] — a run-journal record is structurally valid JSON but
//!   semantically unusable (missing field, unknown outcome), or journal I/O
//!   failed. Carries an optional [`ParseError`] source.

use std::error::Error;
use std::fmt;

/// A machine or workload configuration was internally inconsistent.
///
/// # Example
/// ```
/// use mcgpu_types::MachineConfig;
///
/// let mut cfg = MachineConfig::paper_baseline();
/// cfg.page_size = 64; // smaller than the 128 B line
/// let err = cfg.validate().unwrap_err();
/// assert!(err.to_string().contains("page size"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Create an error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

/// A benchmark or trace request could not be satisfied.
///
/// # Example
/// ```
/// use mcgpu_types::TraceError;
///
/// let e = TraceError::UnknownBenchmark { name: "BOGUS".into() };
/// assert!(e.to_string().contains("BOGUS"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// No benchmark profile with this name exists.
    UnknownBenchmark {
        /// The name that failed to resolve.
        name: String,
    },
    /// A generated or loaded workload contains no accesses.
    EmptyWorkload {
        /// The workload's benchmark name.
        name: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnknownBenchmark { name } => {
                write!(f, "unknown benchmark `{name}` (see table04_workloads)")
            }
            TraceError::EmptyWorkload { name } => {
                write!(f, "workload `{name}` contains no accesses")
            }
        }
    }
}

impl Error for TraceError {}

/// Malformed input to one of the hand-rolled readers (canonical stats
/// JSON, journal records).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
}

impl ParseError {
    /// Create an error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl Error for ParseError {}

/// A run-journal record or file could not be used.
///
/// Wraps the underlying [`ParseError`] when the record failed structural
/// parsing; plain I/O and semantic problems carry only a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalError {
    message: String,
    source: Option<ParseError>,
}

impl JournalError {
    /// Create an error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        JournalError {
            message: message.into(),
            source: None,
        }
    }
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "journal error: {}", self.message)?;
        if let Some(src) = &self.source {
            write!(f, ": {src}")?;
        }
        Ok(())
    }
}

impl Error for JournalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        self.source.as_ref().map(|e| e as _)
    }
}

impl From<ParseError> for JournalError {
    fn from(source: ParseError) -> Self {
        JournalError {
            message: "malformed record".into(),
            source: Some(source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = ConfigError::new("boom");
        assert_eq!(e.to_string(), "invalid configuration: boom");
    }

    #[test]
    fn is_send_sync_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(ConfigError::new("x"));
        takes_err(TraceError::UnknownBenchmark { name: "x".into() });
        takes_err(ParseError::new("x"));
        takes_err(JournalError::new("x"));
    }

    #[test]
    fn journal_error_chains_parse_source() {
        let e = JournalError::from(ParseError::new("bad byte"));
        assert!(e.to_string().contains("bad byte"));
        assert!(e.source().is_some());
    }
}
