//! Error types.

use std::error::Error;
use std::fmt;

/// A machine or workload configuration was internally inconsistent.
///
/// # Example
/// ```
/// use mcgpu_types::MachineConfig;
///
/// let mut cfg = MachineConfig::paper_baseline();
/// cfg.page_size = 64; // smaller than the 128 B line
/// let err = cfg.validate().unwrap_err();
/// assert!(err.to_string().contains("page size"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Create an error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = ConfigError::new("boom");
        assert_eq!(e.to_string(), "invalid configuration: boom");
    }

    #[test]
    fn is_send_sync_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(ConfigError::new("x"));
    }
}
