//! Paper-shape expectations and the figure-regression report schema.
//!
//! The SAC reproduction's contract with the paper is *shape*, not absolute
//! cycles (see `DESIGN.md`): who wins on each workload, by what rough
//! factor, and where crossovers fall. This module gives that contract a
//! machine-readable form. An [`ExpectationSet`] is parsed from a committed
//! JSON file (`expectations/sac_isca23.json`, schema
//! [`EXPECT_SCHEMA`]); the `figcheck` harness in `sac-bench` evaluates
//! every [`Expectation`] against freshly swept statistics and emits a
//! [`Report`] (schema [`REPORT_SCHEMA`]) in the workspace's canonical JSON
//! form — deterministic byte-for-byte, so reports can be diffed, snapshot
//! -tested, and uploaded as CI artifacts.
//!
//! Two [`Severity`] classes split the contract:
//!
//! * [`Severity::Shape`] — ordering and crossover facts the reproduction
//!   must preserve (e.g. "SM-side beats memory-side on RN"). A failing
//!   shape expectation gates CI.
//! * [`Severity::Magnitude`] — rough factors with tolerance bands (e.g.
//!   "SP harmonic-mean SM-side speedup within [1.6, 4.0]"). Drift warns
//!   but does not gate, because the scaled model reproduces ratios, not
//!   absolute magnitudes.
//!
//! The checking vocabulary ([`Check`]) is deliberately closed: a band with
//! inclusive edges, a ratio ordering, a relative-error comparison against
//! a published paper value, and a threshold crossover between two points
//! of a curve. Everything an expectation can observe is a [`Metric`] — a
//! named scalar the harness computes from the same structured statistics
//! the figure binaries render, so figures and checks cannot disagree.

use crate::config::{LlcOrgKind, TopologyKind};
use crate::error::ParseError;
use crate::json::{parse, CanonicalWriter, JsonValue};
use crate::packet::ResponseOrigin;

/// Schema identifier of the expectations file.
pub const EXPECT_SCHEMA: &str = "mcgpu-expect-v1";

/// Schema identifier of the figure-regression report.
pub const REPORT_SCHEMA: &str = "mcgpu-figcheck-v1";

/// How severely a failed expectation is treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// A structural fact of the paper (ordering, crossover). Failing one
    /// fails the `figcheck` run (nonzero exit, CI gate).
    Shape,
    /// A rough published factor with a tolerance band. Failing one is
    /// reported as a warning only.
    Magnitude,
}

impl Severity {
    /// Stable label used in the JSON forms.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Shape => "shape",
            Severity::Magnitude => "magnitude",
        }
    }

    /// Inverse of [`Severity::label`].
    pub fn from_label(label: &str) -> Option<Severity> {
        match label {
            "shape" => Some(Severity::Shape),
            "magnitude" => Some(Severity::Magnitude),
            _ => None,
        }
    }
}

/// The benchmark group a harmonic mean runs over (Fig. 1 / Fig. 8 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Group {
    /// SM-side-preferred benchmarks (top half of Table 4).
    Sp,
    /// Memory-side-preferred benchmarks (bottom half of Table 4).
    Mp,
    /// All 16 benchmarks.
    All,
}

impl Group {
    /// Stable label used in the JSON forms.
    pub fn label(self) -> &'static str {
        match self {
            Group::Sp => "SP",
            Group::Mp => "MP",
            Group::All => "all",
        }
    }

    /// Inverse of [`Group::label`].
    pub fn from_label(label: &str) -> Option<Group> {
        match label {
            "SP" => Some(Group::Sp),
            "MP" => Some(Group::Mp),
            "all" => Some(Group::All),
            _ => None,
        }
    }
}

/// Which Table 4 column a measured-characteristic metric reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Table4Field {
    /// Total footprint in paper-equivalent MB.
    Footprint,
    /// Truly-shared MB.
    TrueShared,
    /// Falsely-shared MB.
    FalseShared,
}

impl Table4Field {
    /// Stable label used in the JSON forms.
    pub fn label(self) -> &'static str {
        match self {
            Table4Field::Footprint => "footprint_mb",
            Table4Field::TrueShared => "true_shared_mb",
            Table4Field::FalseShared => "false_shared_mb",
        }
    }

    /// Inverse of [`Table4Field::label`].
    pub fn from_label(label: &str) -> Option<Table4Field> {
        match label {
            "footprint_mb" => Some(Table4Field::Footprint),
            "true_shared_mb" => Some(Table4Field::TrueShared),
            "false_shared_mb" => Some(Table4Field::FalseShared),
            _ => None,
        }
    }
}

/// Which cycle-vs-fast error dimension a cross-validation metric reads.
///
/// The two-tier engine's analytic fast mode is only trustworthy while its
/// predictions track the cycle engine; the `crossval` harness measures
/// these per golden case and `expectations/crossval.json` pins bands on
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrossvalField {
    /// `|fast hit rate − cycle hit rate|` in absolute LLC hit-rate points
    /// (a fraction in `[0, 1]`, so `0.05` is five points).
    LlcHitAbsErr,
    /// Relative error of predicted inter-chip fabric bytes:
    /// `|fast − cycle| / cycle`.
    FabricRelErr,
    /// Relative error of predicted DRAM traffic (reads + writes):
    /// `|fast − cycle| / cycle`.
    DramRelErr,
}

impl CrossvalField {
    /// Every field, in scorecard order.
    pub const ALL: [CrossvalField; 3] = [
        CrossvalField::LlcHitAbsErr,
        CrossvalField::FabricRelErr,
        CrossvalField::DramRelErr,
    ];

    /// Stable label used in the JSON forms.
    pub fn label(self) -> &'static str {
        match self {
            CrossvalField::LlcHitAbsErr => "llc_hit_abs_err",
            CrossvalField::FabricRelErr => "fabric_rel_err",
            CrossvalField::DramRelErr => "dram_rel_err",
        }
    }

    /// Inverse of [`CrossvalField::label`].
    pub fn from_label(label: &str) -> Option<CrossvalField> {
        match label {
            "llc_hit_abs_err" => Some(CrossvalField::LlcHitAbsErr),
            "fabric_rel_err" => Some(CrossvalField::FabricRelErr),
            "dram_rel_err" => Some(CrossvalField::DramRelErr),
            _ => None,
        }
    }
}

/// One named scalar the harness can compute from swept statistics.
///
/// Benchmark names are free-form here (the types crate does not know the
/// profile set); the harness rejects unknown names at evaluation time.
/// Organization, origin, group and field names are validated at parse
/// time against their closed vocabularies.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Fig. 8: speedup of `org` over the memory-side baseline on `bench`
    /// (cycle-count ratio).
    Speedup {
        /// Table 4 benchmark name.
        bench: String,
        /// LLC organization.
        org: LlcOrgKind,
    },
    /// Fig. 8 bottom rows: harmonic-mean speedup of `org` over the
    /// memory-side baseline across a benchmark group.
    HmeanSpeedup {
        /// Benchmark group.
        group: Group,
        /// LLC organization.
        org: LlcOrgKind,
    },
    /// Fig. 9: mean fraction of resident LLC lines holding local data.
    LocalFraction {
        /// Table 4 benchmark name.
        bench: String,
        /// LLC organization.
        org: LlcOrgKind,
    },
    /// Fig. 10: effective LLC bandwidth (read responses per cycle) of
    /// `org`, normalized to the memory-side total on the same benchmark.
    BwTotal {
        /// Table 4 benchmark name.
        bench: String,
        /// LLC organization.
        org: LlcOrgKind,
    },
    /// Fig. 10: the share of `org`'s read responses served from `origin`
    /// (a fraction of that organization's own total, in `[0, 1]`).
    BwShare {
        /// Table 4 benchmark name.
        bench: String,
        /// LLC organization.
        org: LlcOrgKind,
        /// Response origin whose share is measured.
        origin: ResponseOrigin,
    },
    /// Fig. 11: mean per-window working set of `bench` in paper-equivalent
    /// MB (all sharing classes summed) for a window of `window` cycles,
    /// measured under the SM-side organization.
    WorkingSetMb {
        /// Table 4 benchmark name.
        bench: String,
        /// Window length in cycles.
        window: u64,
    },
    /// Table 4: a characteristic measured from the generated trace, in
    /// paper-equivalent MB.
    MeasuredMb {
        /// Table 4 benchmark name.
        bench: String,
        /// Which column.
        field: Table4Field,
    },
    /// Fig. 15: harmonic-mean speedup of `org` over the memory-side
    /// baseline across the scale-out subset at (`topology`, `chips`).
    ScaleSpeedup {
        /// Inter-chip topology.
        topology: TopologyKind,
        /// Chip count.
        chips: u64,
        /// LLC organization.
        org: LlcOrgKind,
    },
    /// Fig. 15: mean inter-chip fabric traffic under the memory-side
    /// baseline, in bytes per cycle, at (`topology`, `chips`).
    FabricBytes {
        /// Inter-chip topology.
        topology: TopologyKind,
        /// Chip count.
        chips: u64,
    },
    /// Two-tier cross-validation: a cycle-vs-fast prediction error of the
    /// analytic engine on one golden case (free-form case name, validated
    /// at evaluation time like benchmark names).
    CrossvalErr {
        /// Golden case name (e.g. `sn_sac`).
        case: String,
        /// Which error dimension.
        field: CrossvalField,
    },
}

impl Metric {
    /// Stable metric-kind label used in the JSON forms.
    pub fn kind_label(&self) -> &'static str {
        match self {
            Metric::Speedup { .. } => "speedup",
            Metric::HmeanSpeedup { .. } => "hmean_speedup",
            Metric::LocalFraction { .. } => "local_fraction",
            Metric::BwTotal { .. } => "bw_total",
            Metric::BwShare { .. } => "bw_share",
            Metric::WorkingSetMb { .. } => "working_set_mb",
            Metric::MeasuredMb { .. } => "measured_mb",
            Metric::ScaleSpeedup { .. } => "scale_speedup",
            Metric::FabricBytes { .. } => "fabric_bytes",
            Metric::CrossvalErr { .. } => "crossval_err",
        }
    }

    /// A compact human-readable identity, used in scorecards and report
    /// detail strings (e.g. `speedup(RN, SM-side)`).
    pub fn describe(&self) -> String {
        match self {
            Metric::Speedup { bench, org } => format!("speedup({bench}, {})", org.label()),
            Metric::HmeanSpeedup { group, org } => {
                format!("hmean_speedup({}, {})", group.label(), org.label())
            }
            Metric::LocalFraction { bench, org } => {
                format!("local_fraction({bench}, {})", org.label())
            }
            Metric::BwTotal { bench, org } => format!("bw_total({bench}, {})", org.label()),
            Metric::BwShare { bench, org, origin } => {
                format!("bw_share({bench}, {}, {})", org.label(), origin.label())
            }
            Metric::WorkingSetMb { bench, window } => {
                format!("working_set_mb({bench}, {window}cy)")
            }
            Metric::MeasuredMb { bench, field } => {
                format!("measured_mb({bench}, {})", field.label())
            }
            Metric::ScaleSpeedup {
                topology,
                chips,
                org,
            } => {
                format!(
                    "scale_speedup({}, {chips}, {})",
                    topology.label(),
                    org.label()
                )
            }
            Metric::FabricBytes { topology, chips } => {
                format!("fabric_bytes({}, {chips})", topology.label())
            }
            Metric::CrossvalErr { case, field } => {
                format!("crossval_err({case}, {})", field.label())
            }
        }
    }

    fn from_json(v: &JsonValue) -> Result<Metric, ParseError> {
        let kind = str_field(v, "metric")?;
        let org = || -> Result<LlcOrgKind, ParseError> {
            let label = str_field(v, "org")?;
            LlcOrgKind::from_label(label)
                .ok_or_else(|| ParseError::new(format!("unknown organization `{label}`")))
        };
        let bench = || str_field(v, "bench").map(str::to_string);
        match kind {
            "speedup" => Ok(Metric::Speedup {
                bench: bench()?,
                org: org()?,
            }),
            "hmean_speedup" => {
                let label = str_field(v, "group")?;
                Ok(Metric::HmeanSpeedup {
                    group: Group::from_label(label)
                        .ok_or_else(|| ParseError::new(format!("unknown group `{label}`")))?,
                    org: org()?,
                })
            }
            "local_fraction" => Ok(Metric::LocalFraction {
                bench: bench()?,
                org: org()?,
            }),
            "bw_total" => Ok(Metric::BwTotal {
                bench: bench()?,
                org: org()?,
            }),
            "bw_share" => {
                let label = str_field(v, "origin")?;
                let origin = ResponseOrigin::ALL
                    .into_iter()
                    .find(|o| o.label() == label)
                    .ok_or_else(|| ParseError::new(format!("unknown origin `{label}`")))?;
                Ok(Metric::BwShare {
                    bench: bench()?,
                    org: org()?,
                    origin,
                })
            }
            "working_set_mb" => Ok(Metric::WorkingSetMb {
                bench: bench()?,
                window: u64_field(v, "window")?,
            }),
            "measured_mb" => {
                let label = str_field(v, "field")?;
                Ok(Metric::MeasuredMb {
                    bench: bench()?,
                    field: Table4Field::from_label(label)
                        .ok_or_else(|| ParseError::new(format!("unknown field `{label}`")))?,
                })
            }
            "scale_speedup" => Ok(Metric::ScaleSpeedup {
                topology: topology_field(v)?,
                chips: u64_field(v, "chips")?,
                org: org()?,
            }),
            "fabric_bytes" => Ok(Metric::FabricBytes {
                topology: topology_field(v)?,
                chips: u64_field(v, "chips")?,
            }),
            "crossval_err" => {
                let label = str_field(v, "field")?;
                Ok(Metric::CrossvalErr {
                    case: str_field(v, "case")?.to_string(),
                    field: CrossvalField::from_label(label).ok_or_else(|| {
                        ParseError::new(format!("unknown crossval field `{label}`"))
                    })?,
                })
            }
            other => Err(ParseError::new(format!("unknown metric kind `{other}`"))),
        }
    }

    fn write_json(&self, w: &mut CanonicalWriter) {
        w.str_field("metric", self.kind_label());
        match self {
            Metric::Speedup { bench, org }
            | Metric::LocalFraction { bench, org }
            | Metric::BwTotal { bench, org } => {
                w.str_field("bench", bench);
                w.str_field("org", org.label());
            }
            Metric::HmeanSpeedup { group, org } => {
                w.str_field("group", group.label());
                w.str_field("org", org.label());
            }
            Metric::BwShare { bench, org, origin } => {
                w.str_field("bench", bench);
                w.str_field("org", org.label());
                w.str_field("origin", origin.label());
            }
            Metric::WorkingSetMb { bench, window } => {
                w.str_field("bench", bench);
                w.u64_field("window", *window);
            }
            Metric::MeasuredMb { bench, field } => {
                w.str_field("bench", bench);
                w.str_field("field", field.label());
            }
            Metric::ScaleSpeedup {
                topology,
                chips,
                org,
            } => {
                w.str_field("topology", topology.label());
                w.u64_field("chips", *chips);
                w.str_field("org", org.label());
            }
            Metric::FabricBytes { topology, chips } => {
                w.str_field("topology", topology.label());
                w.u64_field("chips", *chips);
            }
            Metric::CrossvalErr { case, field } => {
                w.str_field("case", case);
                w.str_field("field", field.label());
            }
        }
    }

    /// Every benchmark name this metric reads (for cross-validation
    /// against the profile set).
    pub fn benches(&self) -> Vec<&str> {
        match self {
            Metric::Speedup { bench, .. }
            | Metric::LocalFraction { bench, .. }
            | Metric::BwTotal { bench, .. }
            | Metric::BwShare { bench, .. }
            | Metric::WorkingSetMb { bench, .. }
            | Metric::MeasuredMb { bench, .. } => vec![bench],
            Metric::HmeanSpeedup { .. }
            | Metric::ScaleSpeedup { .. }
            | Metric::FabricBytes { .. }
            | Metric::CrossvalErr { .. } => Vec::new(),
        }
    }
}

/// The closed predicate vocabulary an expectation can assert.
#[derive(Debug, Clone, PartialEq)]
pub enum Check {
    /// `lo <= value <= hi`. Both edges are **inclusive** (pinned by test;
    /// a value exactly on an edge passes).
    Band {
        /// The observed metric.
        metric: Metric,
        /// Inclusive lower edge.
        lo: f64,
        /// Inclusive upper edge.
        hi: f64,
    },
    /// `left >= min_ratio * right`: the paper's ordering facts, with an
    /// optional separation factor (`min_ratio = 1.0` is a plain ordering).
    Ordering {
        /// The side the paper says is larger.
        left: Metric,
        /// The side the paper says is smaller.
        right: Metric,
        /// Required separation; `left` must be at least this multiple of
        /// `right`.
        min_ratio: f64,
    },
    /// `|value - reference| <= max_rel * |reference|`: a measured quantity
    /// must land within a relative tolerance of a published paper value.
    RelErr {
        /// The observed metric.
        metric: Metric,
        /// The paper's published value.
        reference: f64,
        /// Maximum relative error (e.g. `0.25` for ±25%).
        max_rel: f64,
    },
    /// A curve crosses `threshold` between two sampled points:
    /// `below <= threshold` **and** `above >= threshold` (edges
    /// inclusive). Encodes the paper's crossover locations (Fig. 11's
    /// working sets crossing LLC capacity, Fig. 13's input-scale flips).
    Crossover {
        /// The sample on the small side of the crossover.
        below: Metric,
        /// The sample on the large side of the crossover.
        above: Metric,
        /// The crossed threshold.
        threshold: f64,
    },
}

impl Check {
    /// Stable check-kind label used in the JSON forms.
    pub fn kind_label(&self) -> &'static str {
        match self {
            Check::Band { .. } => "band",
            Check::Ordering { .. } => "ordering",
            Check::RelErr { .. } => "rel_err",
            Check::Crossover { .. } => "crossover",
        }
    }

    /// Every metric this check observes, in evaluation order.
    pub fn metrics(&self) -> Vec<&Metric> {
        match self {
            Check::Band { metric, .. } | Check::RelErr { metric, .. } => vec![metric],
            Check::Ordering { left, right, .. } => vec![left, right],
            Check::Crossover { below, above, .. } => vec![below, above],
        }
    }

    /// Apply the predicate to the metric values, in the order
    /// [`Check::metrics`] returned them.
    ///
    /// Band and crossover edges are inclusive; NaN values fail every
    /// check (a NaN metric means the sweep produced degenerate data, which
    /// must never pass silently).
    pub fn apply(&self, values: &[f64]) -> bool {
        match self {
            Check::Band { lo, hi, .. } => values[0] >= *lo && values[0] <= *hi,
            Check::Ordering { min_ratio, .. } => values[0] >= min_ratio * values[1],
            Check::RelErr {
                reference, max_rel, ..
            } => (values[0] - reference).abs() <= max_rel * reference.abs(),
            Check::Crossover { threshold, .. } => {
                values[0] <= *threshold && values[1] >= *threshold
            }
        }
    }

    fn from_json(v: &JsonValue) -> Result<Check, ParseError> {
        let kind = str_field(v, "kind")?;
        let metric_at = |key: &str| -> Result<Metric, ParseError> {
            Metric::from_json(
                v.get(key)
                    .ok_or_else(|| ParseError::new(format!("missing metric `{key}`")))?,
            )
        };
        match kind {
            "band" => {
                let lo = f64_field(v, "lo")?;
                let hi = f64_field(v, "hi")?;
                if lo.is_nan() || hi.is_nan() || lo > hi {
                    return Err(ParseError::new(format!(
                        "band edges inverted: [{lo}, {hi}]"
                    )));
                }
                Ok(Check::Band {
                    metric: metric_at("value")?,
                    lo,
                    hi,
                })
            }
            "ordering" => {
                let min_ratio = f64_field(v, "min_ratio")?;
                if min_ratio.is_nan() || min_ratio <= 0.0 {
                    return Err(ParseError::new("min_ratio must be positive"));
                }
                Ok(Check::Ordering {
                    left: metric_at("left")?,
                    right: metric_at("right")?,
                    min_ratio,
                })
            }
            "rel_err" => {
                let max_rel = f64_field(v, "max_rel")?;
                if max_rel.is_nan() || max_rel < 0.0 {
                    return Err(ParseError::new("max_rel must be non-negative"));
                }
                Ok(Check::RelErr {
                    metric: metric_at("value")?,
                    reference: f64_field(v, "reference")?,
                    max_rel,
                })
            }
            "crossover" => Ok(Check::Crossover {
                below: metric_at("below")?,
                above: metric_at("above")?,
                threshold: f64_field(v, "threshold")?,
            }),
            other => Err(ParseError::new(format!("unknown check kind `{other}`"))),
        }
    }

    fn write_json(&self, w: &mut CanonicalWriter) {
        w.str_field("kind", self.kind_label());
        match self {
            Check::Band { metric, lo, hi } => {
                w.object_field("value", |w| metric.write_json(w));
                w.f64_field("lo", *lo);
                w.f64_field("hi", *hi);
            }
            Check::Ordering {
                left,
                right,
                min_ratio,
            } => {
                w.object_field("left", |w| left.write_json(w));
                w.object_field("right", |w| right.write_json(w));
                w.f64_field("min_ratio", *min_ratio);
            }
            Check::RelErr {
                metric,
                reference,
                max_rel,
            } => {
                w.object_field("value", |w| metric.write_json(w));
                w.f64_field("reference", *reference);
                w.f64_field("max_rel", *max_rel);
            }
            Check::Crossover {
                below,
                above,
                threshold,
            } => {
                w.object_field("below", |w| below.write_json(w));
                w.object_field("above", |w| above.write_json(w));
                w.f64_field("threshold", *threshold);
            }
        }
    }
}

/// One paper-shape expectation.
#[derive(Debug, Clone, PartialEq)]
pub struct Expectation {
    /// Stable unique identifier (`figure/subject/claim` by convention).
    pub id: String,
    /// The figure or table this fact comes from (`fig08` … `table04`).
    pub figure: String,
    /// CI-gating class.
    pub severity: Severity,
    /// The predicate.
    pub check: Check,
    /// Free-form provenance note (what the paper actually says).
    pub note: String,
}

/// A parsed expectations file.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectationSet {
    /// Provenance of the expectations (the paper's citation).
    pub source: String,
    /// The expectations, in file order (which is also report order).
    pub expectations: Vec<Expectation>,
}

impl ExpectationSet {
    /// Parse an `mcgpu-expect-v1` document.
    ///
    /// # Errors
    /// [`ParseError`] on malformed JSON, a wrong or missing schema tag,
    /// duplicate ids, unknown vocabulary (organizations, origins, groups,
    /// fields, check/metric kinds), or invalid bounds.
    pub fn parse(text: &str) -> Result<ExpectationSet, ParseError> {
        let v = parse(text)?;
        let schema = str_field(&v, "schema")?;
        if schema != EXPECT_SCHEMA {
            return Err(ParseError::new(format!(
                "expected schema `{EXPECT_SCHEMA}`, found `{schema}`"
            )));
        }
        let source = str_field(&v, "source")?.to_string();
        let items = v
            .get("expectations")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ParseError::new("missing array field `expectations`"))?;
        let mut expectations = Vec::with_capacity(items.len());
        for item in items {
            let id = str_field(item, "id")?.to_string();
            let severity_label = str_field(item, "severity")?;
            let severity = Severity::from_label(severity_label)
                .ok_or_else(|| ParseError::new(format!("unknown severity `{severity_label}`")))?;
            let check = Check::from_json(
                item.get("check")
                    .ok_or_else(|| ParseError::new(format!("expectation `{id}` has no check")))?,
            )
            .map_err(|e| ParseError::new(format!("expectation `{id}`: {e}")))?;
            expectations.push(Expectation {
                id,
                figure: str_field(item, "figure")?.to_string(),
                severity,
                check,
                note: str_field(item, "note")?.to_string(),
            });
        }
        let mut seen = std::collections::HashSet::new();
        for e in &expectations {
            if !seen.insert(e.id.as_str()) {
                return Err(ParseError::new(format!(
                    "duplicate expectation id `{}`",
                    e.id
                )));
            }
        }
        Ok(ExpectationSet {
            source,
            expectations,
        })
    }

    /// Serialize back to canonical `mcgpu-expect-v1` JSON (fixed key
    /// order, 2-space indentation, shortest-roundtrip floats). Parsing the
    /// output reproduces the set exactly, which pins the schema in tests.
    pub fn to_canonical_json(&self) -> String {
        let mut w = CanonicalWriter::new();
        w.open();
        w.str_field("schema", EXPECT_SCHEMA);
        w.str_field("source", &self.source);
        w.array_field("expectations", self.expectations.len(), |w, i| {
            let e = &self.expectations[i];
            w.open();
            w.str_field("id", &e.id);
            w.str_field("figure", &e.figure);
            w.str_field("severity", e.severity.label());
            w.object_field("check", |w| e.check.write_json(w));
            w.str_field("note", &e.note);
            w.close();
        });
        w.close();
        w.finish()
    }

    /// The distinct figures referenced, in first-appearance order.
    pub fn figures(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for e in &self.expectations {
            if !out.contains(&e.figure.as_str()) {
                out.push(&e.figure);
            }
        }
        out
    }
}

/// Verdict of one evaluated expectation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The check held.
    Pass,
    /// The check failed (gates iff the expectation is shape-class).
    Fail,
    /// A metric could not be computed (unknown benchmark, missing sweep
    /// data). Treated as failing for gating purposes.
    Error,
}

impl Verdict {
    /// Stable label used in the JSON report.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Fail => "fail",
            Verdict::Error => "error",
        }
    }

    /// Inverse of [`Verdict::label`].
    pub fn from_label(label: &str) -> Option<Verdict> {
        match label {
            "pass" => Some(Verdict::Pass),
            "fail" => Some(Verdict::Fail),
            "error" => Some(Verdict::Error),
            _ => None,
        }
    }
}

/// One evaluated expectation in a [`Report`].
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The expectation's id.
    pub id: String,
    /// The expectation's figure.
    pub figure: String,
    /// The expectation's severity class.
    pub severity: Severity,
    /// The outcome.
    pub verdict: Verdict,
    /// `(metric description, observed value)` pairs in evaluation order;
    /// empty when the verdict is [`Verdict::Error`].
    pub observed: Vec<(String, f64)>,
    /// Human-readable explanation (the predicate with numbers filled in,
    /// or the evaluation error).
    pub detail: String,
}

/// A complete `mcgpu-figcheck-v1` evaluation report.
///
/// Reports are canonical: byte equality of
/// [`Report::to_canonical_json`] is exactly equality of the evaluation,
/// so two runs of the harness over the same simulator must produce
/// byte-identical reports regardless of thread count or journal resume.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Provenance copied from the expectations file.
    pub source: String,
    /// Label of the sweep volume the metrics were computed at (e.g.
    /// `"standard"` or `"quick"`), so a report is never compared against
    /// one computed from a different-size sweep.
    pub volume: String,
    /// One finding per expectation, in expectations-file order.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Number of findings with the given verdict and severity.
    pub fn count(&self, severity: Severity, verdict: Verdict) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity && f.verdict == verdict)
            .count()
    }

    /// Whether any shape-class expectation failed or errored — the
    /// condition under which `figcheck` exits nonzero and CI gates.
    pub fn gates(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.severity == Severity::Shape && f.verdict != Verdict::Pass)
    }

    /// Serialize to canonical `mcgpu-figcheck-v1` JSON: fixed key order,
    /// 2-space indentation, floats in shortest-roundtrip form. Two
    /// evaluations serialize identically iff they observed bit-identical
    /// values and verdicts.
    pub fn to_canonical_json(&self) -> String {
        let mut w = CanonicalWriter::new();
        w.open();
        w.str_field("schema", REPORT_SCHEMA);
        w.str_field("source", &self.source);
        w.str_field("volume", &self.volume);
        w.object_field("summary", |w| {
            w.u64_field("expectations", self.findings.len() as u64);
            for sev in [Severity::Shape, Severity::Magnitude] {
                w.object_field(sev.label(), |w| {
                    w.u64_field("pass", self.count(sev, Verdict::Pass) as u64);
                    w.u64_field("fail", self.count(sev, Verdict::Fail) as u64);
                    w.u64_field("error", self.count(sev, Verdict::Error) as u64);
                });
            }
            w.bool_field("gates", self.gates());
        });
        w.array_field("findings", self.findings.len(), |w, i| {
            let f = &self.findings[i];
            w.open();
            w.str_field("id", &f.id);
            w.str_field("figure", &f.figure);
            w.str_field("severity", f.severity.label());
            w.str_field("verdict", f.verdict.label());
            w.array_field("observed", f.observed.len(), |w, j| {
                let (desc, value) = &f.observed[j];
                w.open();
                w.str_field("metric", desc);
                w.f64_field("value", *value);
                w.close();
            });
            w.str_field("detail", &f.detail);
            w.close();
        });
        w.close();
        w.finish()
    }

    /// Reconstruct a report from [`Report::to_canonical_json`] output.
    /// The round trip is exact (shortest-roundtrip floats), so
    /// `parse(r.to_canonical_json()) == r` bit-for-bit.
    ///
    /// # Errors
    /// [`ParseError`] on malformed JSON, a wrong schema tag, or unknown
    /// labels.
    pub fn parse(text: &str) -> Result<Report, ParseError> {
        let v = parse(text)?;
        let schema = str_field(&v, "schema")?;
        if schema != REPORT_SCHEMA {
            return Err(ParseError::new(format!(
                "expected schema `{REPORT_SCHEMA}`, found `{schema}`"
            )));
        }
        let findings = v
            .get("findings")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ParseError::new("missing array field `findings`"))?
            .iter()
            .map(|f| {
                let severity_label = str_field(f, "severity")?;
                let verdict_label = str_field(f, "verdict")?;
                let observed = f
                    .get("observed")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| ParseError::new("missing array field `observed`"))?
                    .iter()
                    .map(|o| Ok((str_field(o, "metric")?.to_string(), f64_field(o, "value")?)))
                    .collect::<Result<Vec<_>, ParseError>>()?;
                Ok(Finding {
                    id: str_field(f, "id")?.to_string(),
                    figure: str_field(f, "figure")?.to_string(),
                    severity: Severity::from_label(severity_label).ok_or_else(|| {
                        ParseError::new(format!("unknown severity `{severity_label}`"))
                    })?,
                    verdict: Verdict::from_label(verdict_label).ok_or_else(|| {
                        ParseError::new(format!("unknown verdict `{verdict_label}`"))
                    })?,
                    observed,
                    detail: str_field(f, "detail")?.to_string(),
                })
            })
            .collect::<Result<Vec<_>, ParseError>>()?;
        Ok(Report {
            source: str_field(&v, "source")?.to_string(),
            volume: str_field(&v, "volume")?.to_string(),
            findings,
        })
    }
}

fn topology_field(v: &JsonValue) -> Result<TopologyKind, ParseError> {
    let label = str_field(v, "topology")?;
    TopologyKind::from_label(label)
        .ok_or_else(|| ParseError::new(format!("unknown topology `{label}`")))
}

fn str_field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, ParseError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ParseError::new(format!("missing string field `{key}`")))
}

fn f64_field(v: &JsonValue, key: &str) -> Result<f64, ParseError> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| ParseError::new(format!("missing number field `{key}`")))
}

fn u64_field(v: &JsonValue, key: &str) -> Result<u64, ParseError> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| ParseError::new(format!("missing integer field `{key}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> ExpectationSet {
        ExpectationSet {
            source: "SAC ISCA 2023".to_string(),
            expectations: vec![
                Expectation {
                    id: "fig08/RN/sm-beats-mem".to_string(),
                    figure: "fig08".to_string(),
                    severity: Severity::Shape,
                    check: Check::Ordering {
                        left: Metric::Speedup {
                            bench: "RN".to_string(),
                            org: LlcOrgKind::SmSide,
                        },
                        right: Metric::Speedup {
                            bench: "RN".to_string(),
                            org: LlcOrgKind::MemorySide,
                        },
                        min_ratio: 1.0,
                    },
                    note: "Fig. 8: SM-side beats memory-side on RN".to_string(),
                },
                Expectation {
                    id: "fig11/RN/crossover".to_string(),
                    figure: "fig11".to_string(),
                    severity: Severity::Magnitude,
                    check: Check::Crossover {
                        below: Metric::WorkingSetMb {
                            bench: "RN".to_string(),
                            window: 1_000,
                        },
                        above: Metric::WorkingSetMb {
                            bench: "RN".to_string(),
                            window: 100_000,
                        },
                        threshold: 16.0,
                    },
                    note: "Fig. 11: working set crosses LLC capacity".to_string(),
                },
            ],
        }
    }

    #[test]
    fn expectation_set_round_trips_canonically() {
        let set = sample_set();
        let json = set.to_canonical_json();
        let back = ExpectationSet::parse(&json).unwrap();
        assert_eq!(back, set);
        assert_eq!(back.to_canonical_json(), json);
        assert_eq!(set.figures(), vec!["fig08", "fig11"]);
    }

    #[test]
    fn scaleout_metrics_round_trip_and_reject_unknown_topologies() {
        let set = ExpectationSet {
            source: "scale-out".to_string(),
            expectations: vec![
                Expectation {
                    id: "fig15/ring/fabric-grows-4-to-8".to_string(),
                    figure: "fig15".to_string(),
                    severity: Severity::Shape,
                    check: Check::Ordering {
                        left: Metric::FabricBytes {
                            topology: TopologyKind::Ring,
                            chips: 8,
                        },
                        right: Metric::FabricBytes {
                            topology: TopologyKind::Ring,
                            chips: 4,
                        },
                        min_ratio: 1.0,
                    },
                    note: "fabric traffic grows with chip count".to_string(),
                },
                Expectation {
                    id: "fig15/mesh2d/sac-band".to_string(),
                    figure: "fig15".to_string(),
                    severity: Severity::Magnitude,
                    check: Check::Band {
                        metric: Metric::ScaleSpeedup {
                            topology: TopologyKind::Mesh2D,
                            chips: 16,
                            org: LlcOrgKind::Sac,
                        },
                        lo: 0.9,
                        hi: 3.0,
                    },
                    note: "".to_string(),
                },
            ],
        };
        let json = set.to_canonical_json();
        let back = ExpectationSet::parse(&json).unwrap();
        assert_eq!(back, set);
        assert_eq!(back.to_canonical_json(), json);
        // An unknown topology label must be rejected at parse time.
        assert!(ExpectationSet::parse(&json.replace("\"ring\"", "\"torus\"")).is_err());
    }

    #[test]
    fn parse_rejects_bad_documents() {
        assert!(ExpectationSet::parse("{}").is_err());
        assert!(
            ExpectationSet::parse(r#"{"schema": "nope", "source": "x", "expectations": []}"#)
                .is_err()
        );
        // Unknown org.
        let bad = r#"{"schema": "mcgpu-expect-v1", "source": "x", "expectations": [
            {"id": "a", "figure": "f", "severity": "shape", "note": "",
             "check": {"kind": "band", "lo": 0.0, "hi": 1.0,
                       "value": {"metric": "speedup", "bench": "RN", "org": "bogus"}}}]}"#;
        assert!(ExpectationSet::parse(bad).is_err());
        // Inverted band.
        let inverted = r#"{"schema": "mcgpu-expect-v1", "source": "x", "expectations": [
            {"id": "a", "figure": "f", "severity": "shape", "note": "",
             "check": {"kind": "band", "lo": 2.0, "hi": 1.0,
                       "value": {"metric": "speedup", "bench": "RN", "org": "SAC"}}}]}"#;
        assert!(ExpectationSet::parse(inverted).is_err());
        // Duplicate ids.
        let dup = r#"{"schema": "mcgpu-expect-v1", "source": "x", "expectations": [
            {"id": "a", "figure": "f", "severity": "shape", "note": "",
             "check": {"kind": "band", "lo": 0.0, "hi": 1.0,
                       "value": {"metric": "speedup", "bench": "RN", "org": "SAC"}}},
            {"id": "a", "figure": "f", "severity": "magnitude", "note": "",
             "check": {"kind": "band", "lo": 0.0, "hi": 1.0,
                       "value": {"metric": "speedup", "bench": "RN", "org": "SAC"}}}]}"#;
        assert!(ExpectationSet::parse(dup).is_err());
    }

    #[test]
    fn check_edges_are_inclusive() {
        let m = Metric::Speedup {
            bench: "RN".to_string(),
            org: LlcOrgKind::Sac,
        };
        let band = Check::Band {
            metric: m.clone(),
            lo: 1.0,
            hi: 2.0,
        };
        assert!(band.apply(&[1.0]));
        assert!(band.apply(&[2.0]));
        assert!(!band.apply(&[0.9999999999]));
        assert!(!band.apply(&[2.0000000001]));
        assert!(!band.apply(&[f64::NAN]));

        let cross = Check::Crossover {
            below: m.clone(),
            above: m.clone(),
            threshold: 16.0,
        };
        assert!(cross.apply(&[16.0, 16.0]));
        assert!(cross.apply(&[10.0, 20.0]));
        assert!(!cross.apply(&[17.0, 20.0]));
        assert!(!cross.apply(&[10.0, 15.0]));
        assert!(!cross.apply(&[f64::NAN, 20.0]));

        let ord = Check::Ordering {
            left: m.clone(),
            right: m.clone(),
            min_ratio: 1.5,
        };
        assert!(ord.apply(&[3.0, 2.0]));
        assert!(!ord.apply(&[2.9, 2.0]));
        assert!(!ord.apply(&[f64::NAN, 2.0]));

        let rel = Check::RelErr {
            metric: m,
            reference: 10.0,
            max_rel: 0.25,
        };
        assert!(rel.apply(&[12.5]));
        assert!(rel.apply(&[7.5]));
        assert!(!rel.apply(&[12.6]));
        assert!(!rel.apply(&[f64::NAN]));
    }

    #[test]
    fn report_round_trips_and_gates_on_shape_only() {
        let mut report = Report {
            source: "SAC ISCA 2023".to_string(),
            volume: "quick".to_string(),
            findings: vec![
                Finding {
                    id: "a".to_string(),
                    figure: "fig08".to_string(),
                    severity: Severity::Magnitude,
                    verdict: Verdict::Fail,
                    observed: vec![("speedup(RN, SAC)".to_string(), 1.2345678901234567)],
                    detail: "1.23 outside [2, 3]".to_string(),
                },
                Finding {
                    id: "b".to_string(),
                    figure: "fig09".to_string(),
                    severity: Severity::Shape,
                    verdict: Verdict::Pass,
                    observed: vec![],
                    detail: "ok".to_string(),
                },
            ],
        };
        assert!(!report.gates(), "magnitude failures never gate");
        let json = report.to_canonical_json();
        let back = Report::parse(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_canonical_json(), json);

        report.findings[1].verdict = Verdict::Error;
        assert!(report.gates(), "shape errors gate");
        report.findings[1].verdict = Verdict::Fail;
        assert!(report.gates(), "shape failures gate");
        assert_eq!(report.count(Severity::Shape, Verdict::Fail), 1);
        assert_eq!(report.count(Severity::Magnitude, Verdict::Fail), 1);
    }
}
