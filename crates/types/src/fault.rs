//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a cycle-stamped schedule of hardware degradation
//! events — inter-chip link lane drops and failures, DRAM channel throttle
//! and failure, LLC slice fuse-off — that the simulation engine applies as
//! the clock passes each event's cycle. Plans are plain data validated
//! against a [`MachineConfig`], so the same plan replays identically on
//! every run: fault experiments are as deterministic as fault-free ones.

use crate::config::MachineConfig;
use crate::error::ConfigError;
use crate::ids::ChipId;

/// One kind of hardware degradation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The inter-chip link pair between adjacent chips `a` and `b` loses
    /// lanes: both directions keep only `factor` (in `(0, 1)`) of their
    /// configured bandwidth.
    LinkDegrade {
        /// One endpoint of the link.
        a: ChipId,
        /// The other (fabric-adjacent) endpoint.
        b: ChipId,
        /// Remaining fraction of the configured bandwidth.
        factor: f64,
    },
    /// The inter-chip link pair between adjacent chips `a` and `b` fails
    /// outright in both directions; traffic must route the long way around
    /// the ring.
    LinkFail {
        /// One endpoint of the link.
        a: ChipId,
        /// The other (fabric-adjacent) endpoint.
        b: ChipId,
    },
    /// Every DRAM channel of `chip`'s memory partition keeps only `factor`
    /// (in `(0, 1)`) of its bandwidth — a thermally throttled stack.
    DramThrottle {
        /// The chip whose partition throttles.
        chip: ChipId,
        /// Remaining fraction of the configured per-channel bandwidth.
        factor: f64,
    },
    /// One DRAM channel of `chip`'s partition fails; its queued traffic is
    /// re-issued to the surviving channels.
    DramFail {
        /// The chip whose partition loses a channel.
        chip: ChipId,
        /// Index of the failed channel within the partition.
        channel: usize,
    },
    /// One LLC slice of `chip` is disabled (fused off): dirty lines are
    /// written back, then the slice stops allocating and every lookup
    /// misses through to memory.
    LlcSliceDisable {
        /// The chip losing a slice.
        chip: ChipId,
        /// Index of the disabled slice within the chip.
        slice: usize,
    },
}

/// A [`FaultKind`] scheduled at an absolute cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Cycle at which the fault takes effect (applied at the start of the
    /// first tick with `now >= cycle`).
    pub cycle: u64,
    /// What breaks.
    pub kind: FaultKind,
}

/// A deterministic, cycle-ordered schedule of [`FaultEvent`]s.
///
/// # Example
/// ```
/// use mcgpu_types::fault::{FaultEvent, FaultKind, FaultPlan};
/// use mcgpu_types::{ChipId, MachineConfig};
///
/// let plan = FaultPlan::new(vec![FaultEvent {
///     cycle: 10_000,
///     kind: FaultKind::LinkDegrade { a: ChipId(0), b: ChipId(1), factor: 0.25 },
/// }]);
/// plan.validate(&MachineConfig::paper_baseline()).unwrap();
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Events sorted by cycle (stable: same-cycle events keep their order).
    events: Vec<FaultEvent>,
    /// Index of the first not-yet-applied event.
    cursor: usize,
}

impl FaultPlan {
    /// Build a plan from events in any order; they are sorted by cycle,
    /// same-cycle events keeping their given order.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.cycle);
        FaultPlan { events, cursor: 0 }
    }

    /// A plan with no events.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// All events, in schedule order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events not yet handed out by [`FaultPlan::pop_due`].
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Cycle of the next not-yet-applied event, if any. This is the fault
    /// plan's contribution to the engine's next-event scan: idle-cycle
    /// skipping must never jump past a scheduled fault.
    pub fn next_due(&self) -> Option<u64> {
        self.events.get(self.cursor).map(|e| e.cycle)
    }

    /// Whether the plan has no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Hand out the next event whose cycle has been reached, advancing the
    /// plan. Call repeatedly each cycle until it returns `None`.
    pub fn pop_due(&mut self, now: u64) -> Option<FaultEvent> {
        let e = *self.events.get(self.cursor)?;
        if e.cycle <= now {
            self.cursor += 1;
            Some(e)
        } else {
            None
        }
    }

    /// Serialize the full plan (events and cursor) into a checkpoint
    /// payload, so a restored run neither re-applies past faults nor
    /// misses future ones.
    pub fn save(&self, e: &mut crate::ckpt::Enc) {
        e.put_seq_len(self.events.len());
        for ev in &self.events {
            e.put_u64(ev.cycle);
            match ev.kind {
                FaultKind::LinkDegrade { a, b, factor } => {
                    e.put_u8(0);
                    e.put_u8(a.0);
                    e.put_u8(b.0);
                    e.put_f64(factor);
                }
                FaultKind::LinkFail { a, b } => {
                    e.put_u8(1);
                    e.put_u8(a.0);
                    e.put_u8(b.0);
                }
                FaultKind::DramThrottle { chip, factor } => {
                    e.put_u8(2);
                    e.put_u8(chip.0);
                    e.put_f64(factor);
                }
                FaultKind::DramFail { chip, channel } => {
                    e.put_u8(3);
                    e.put_u8(chip.0);
                    e.put_usize(channel);
                }
                FaultKind::LlcSliceDisable { chip, slice } => {
                    e.put_u8(4);
                    e.put_u8(chip.0);
                    e.put_usize(slice);
                }
            }
        }
        e.put_usize(self.cursor);
    }

    /// Deserialize a plan saved by [`FaultPlan::save`].
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input.
    pub fn load(d: &mut crate::ckpt::Dec<'_>) -> crate::ckpt::CkptResult<Self> {
        let n = d.get_seq_len()?;
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            let cycle = d.get_u64()?;
            let kind = match d.get_u8()? {
                0 => FaultKind::LinkDegrade {
                    a: ChipId(d.get_u8()?),
                    b: ChipId(d.get_u8()?),
                    factor: d.get_f64()?,
                },
                1 => FaultKind::LinkFail {
                    a: ChipId(d.get_u8()?),
                    b: ChipId(d.get_u8()?),
                },
                2 => FaultKind::DramThrottle {
                    chip: ChipId(d.get_u8()?),
                    factor: d.get_f64()?,
                },
                3 => FaultKind::DramFail {
                    chip: ChipId(d.get_u8()?),
                    channel: d.get_usize()?,
                },
                4 => FaultKind::LlcSliceDisable {
                    chip: ChipId(d.get_u8()?),
                    slice: d.get_usize()?,
                },
                t => {
                    return Err(crate::ckpt::CkptError::Decode(format!(
                        "invalid FaultKind tag {t}"
                    )));
                }
            };
            events.push(FaultEvent { cycle, kind });
        }
        let cursor = d.get_usize()?;
        if cursor > events.len() {
            return Err(crate::ckpt::CkptError::Decode(format!(
                "fault cursor {cursor} beyond {} events",
                events.len()
            )));
        }
        Ok(FaultPlan { events, cursor })
    }

    /// Check every event against the machine: endpoints must exist,
    /// link endpoints must be adjacent in the configured topology, factors
    /// must lie in `(0, 1)`,
    /// and channel/slice indices must be in range.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] naming the first invalid event.
    pub fn validate(&self, cfg: &MachineConfig) -> Result<(), ConfigError> {
        let chip_ok = |c: ChipId| c.index() < cfg.chips;
        let adjacent = |a: ChipId, b: ChipId| cfg.is_adjacent(a, b);
        let fraction = |f: f64| f.is_finite() && f > 0.0 && f < 1.0;
        for (i, e) in self.events.iter().enumerate() {
            let bad = |what: &str| {
                Err(ConfigError::new(format!(
                    "fault event {i} (cycle {}): {what}",
                    e.cycle
                )))
            };
            match e.kind {
                FaultKind::LinkDegrade { a, b, factor } => {
                    if !adjacent(a, b) {
                        return bad("link endpoints must be distinct fabric-adjacent chips");
                    }
                    if !fraction(factor) {
                        return bad("degrade factor must be in (0, 1)");
                    }
                }
                FaultKind::LinkFail { a, b } => {
                    if !adjacent(a, b) {
                        return bad("link endpoints must be distinct fabric-adjacent chips");
                    }
                }
                FaultKind::DramThrottle { chip, factor } => {
                    if !chip_ok(chip) {
                        return bad("chip index out of range");
                    }
                    if !fraction(factor) {
                        return bad("throttle factor must be in (0, 1)");
                    }
                }
                FaultKind::DramFail { chip, channel } => {
                    if !chip_ok(chip) {
                        return bad("chip index out of range");
                    }
                    if channel >= cfg.channels_per_chip {
                        return bad("channel index out of range");
                    }
                }
                FaultKind::LlcSliceDisable { chip, slice } => {
                    if !chip_ok(chip) {
                        return bad("chip index out of range");
                    }
                    if slice >= cfg.slices_per_chip {
                        return bad("slice index out of range");
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::paper_baseline()
    }

    #[test]
    fn events_are_sorted_and_popped_in_cycle_order() {
        let mut plan = FaultPlan::new(vec![
            FaultEvent {
                cycle: 500,
                kind: FaultKind::DramThrottle {
                    chip: ChipId(1),
                    factor: 0.5,
                },
            },
            FaultEvent {
                cycle: 100,
                kind: FaultKind::LinkFail {
                    a: ChipId(0),
                    b: ChipId(1),
                },
            },
        ]);
        assert_eq!(plan.remaining(), 2);
        assert!(plan.pop_due(99).is_none());
        let first = plan.pop_due(100).unwrap();
        assert_eq!(first.cycle, 100);
        assert!(plan.pop_due(100).is_none(), "second event is not due yet");
        let second = plan.pop_due(1_000).unwrap();
        assert_eq!(second.cycle, 500);
        assert_eq!(plan.remaining(), 0);
        assert!(plan.pop_due(u64::MAX).is_none());
    }

    #[test]
    fn same_cycle_events_all_pop() {
        let mk = |chip| FaultEvent {
            cycle: 7,
            kind: FaultKind::DramThrottle {
                chip: ChipId(chip),
                factor: 0.5,
            },
        };
        let mut plan = FaultPlan::new(vec![mk(0), mk(1), mk(2)]);
        let mut n = 0;
        while plan.pop_due(7).is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn validate_accepts_sane_plans() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                cycle: 0,
                kind: FaultKind::LinkDegrade {
                    a: ChipId(3),
                    b: ChipId(0),
                    factor: 0.1,
                },
            },
            FaultEvent {
                cycle: 1,
                kind: FaultKind::DramFail {
                    chip: ChipId(2),
                    channel: 7,
                },
            },
            FaultEvent {
                cycle: 2,
                kind: FaultKind::LlcSliceDisable {
                    chip: ChipId(0),
                    slice: 15,
                },
            },
        ]);
        plan.validate(&cfg()).unwrap();
    }

    #[test]
    fn validate_rejects_bad_events() {
        let link = |a, b| {
            FaultPlan::new(vec![FaultEvent {
                cycle: 0,
                kind: FaultKind::LinkFail {
                    a: ChipId(a),
                    b: ChipId(b),
                },
            }])
        };
        assert!(link(0, 2).validate(&cfg()).is_err(), "not adjacent");
        assert!(link(0, 0).validate(&cfg()).is_err(), "self link");
        assert!(link(0, 9).validate(&cfg()).is_err(), "no such chip");

        // Adjacency follows the configured topology: 0-2 is a real link on
        // an all-to-all fabric and on a 2x2 mesh (vertical neighbor), but
        // the mesh has no 0-3 diagonal.
        let mut full = cfg();
        full.topology = crate::TopologyKind::FullyConnected;
        link(0, 2).validate(&full).unwrap();
        let mut mesh = cfg();
        mesh.topology = crate::TopologyKind::Mesh2D;
        link(0, 2).validate(&mesh).unwrap();
        assert!(link(0, 3).validate(&mesh).is_err(), "no diagonal mesh link");

        let throttle = FaultPlan::new(vec![FaultEvent {
            cycle: 0,
            kind: FaultKind::DramThrottle {
                chip: ChipId(0),
                factor: 1.5,
            },
        }]);
        assert!(throttle.validate(&cfg()).is_err(), "factor out of range");

        let slice = FaultPlan::new(vec![FaultEvent {
            cycle: 0,
            kind: FaultKind::LlcSliceDisable {
                chip: ChipId(0),
                slice: 16,
            },
        }]);
        assert!(slice.validate(&cfg()).is_err(), "slice out of range");
    }
}
