//! Durable, atomic file writes.
//!
//! Every on-disk artifact that must survive a crash — the run journal, the
//! serve manifest, engine checkpoints — is written through this module's
//! single primitive: write a sibling `*.tmp` file, `fsync` it, atomically
//! `rename` it over the destination, then `fsync` the directory so the
//! rename itself is durable. A reader therefore sees either the complete
//! previous file or the complete new file, never a torn mixture.
//!
//! # Failure injection
//!
//! Crash-safety claims are only as good as their tests, so the module has a
//! built-in, always-compiled fault hook: [`inject_failure`] arms a
//! thread-local one-shot [`FailPoint`] that makes the *next* matching I/O
//! step fail exactly the way a power loss at that instant would look
//! (half-written tmp file, unsynced data, missing rename). Production code
//! never arms it; tests use it to prove the journal, manifest and
//! checkpoint writers either complete atomically or leave the previous
//! state readable.

use std::cell::Cell;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Suffix used for in-progress temporary files; anything with this suffix
/// in a state directory is garbage from an interrupted write and may be
/// reaped.
pub const TMP_SUFFIX: &str = ".tmp";

/// A point in the durable-write sequence where an injected failure strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailPoint {
    /// The data write is cut short: only a prefix of the bytes reaches the
    /// tmp file, which is left behind (a crash mid-`write`).
    ShortWrite,
    /// The tmp file's `fsync` fails after a complete write (a crash after
    /// `write` but before durability).
    Fsync,
    /// The atomic `rename` fails after a durable tmp write (a crash between
    /// `fsync` and `rename`).
    Rename,
}

thread_local! {
    static ARMED: Cell<Option<FailPoint>> = const { Cell::new(None) };
}

/// Arm (or with `None`, disarm) a one-shot injected failure for the current
/// thread. The next [`atomic_write`] on this thread that reaches the armed
/// point fails there and disarms the hook.
pub fn inject_failure(point: Option<FailPoint>) {
    ARMED.with(|a| a.set(point));
}

/// Whether a failure is currently armed on this thread (test helper).
pub fn failure_armed() -> bool {
    ARMED.with(|a| a.get()).is_some()
}

fn trip(point: FailPoint) -> bool {
    ARMED.with(|a| {
        if a.get() == Some(point) {
            a.set(None);
            true
        } else {
            false
        }
    })
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected I/O failure: {what}"))
}

/// The sibling temporary path used while writing `path`: the same file name
/// with [`TMP_SUFFIX`] appended.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(TMP_SUFFIX);
    path.with_file_name(name)
}

fn sync_parent_dir(path: &Path) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        // An empty parent means "current directory"; skip rather than fail.
        if !dir.as_os_str().is_empty() {
            fs::File::open(dir)?.sync_all()?;
        }
    }
    Ok(())
}

/// Durably replace `path` with `bytes`: tmp write, `fsync`, atomic
/// `rename`, directory `fsync`. On any failure (real or injected) the
/// previous contents of `path`, if any, are untouched.
///
/// # Errors
/// Propagates the underlying I/O error; an injected failure surfaces as an
/// error whose message names the fail point.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    let mut f = fs::File::create(&tmp)?;
    if trip(FailPoint::ShortWrite) {
        // Model a crash mid-write: a torn tmp file stays on disk.
        f.write_all(&bytes[..bytes.len() / 2])?;
        let _ = f.sync_all();
        return Err(injected("short write"));
    }
    f.write_all(bytes)?;
    if trip(FailPoint::Fsync) {
        return Err(injected("fsync"));
    }
    f.sync_all()?;
    drop(f);
    if trip(FailPoint::Rename) {
        return Err(injected("rename"));
    }
    fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// Durably append `bytes` to `path` (creating it if absent): `write` +
/// `fsync`. Append-only logs (the run journal) use this; atomicity there
/// comes from the reader skipping a torn final record, not from rename.
///
/// # Errors
/// Propagates the underlying I/O error. An armed [`FailPoint::ShortWrite`]
/// appends only a prefix; an armed [`FailPoint::Fsync`] appends everything
/// but fails before durability.
pub fn append_durable(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if trip(FailPoint::ShortWrite) {
        f.write_all(&bytes[..bytes.len() / 2])?;
        let _ = f.sync_all();
        return Err(injected("short append"));
    }
    f.write_all(bytes)?;
    if trip(FailPoint::Fsync) {
        return Err(injected("fsync"));
    }
    f.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mcgpu_fsio_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let d = tdir("replace");
        let p = d.join("state.bin");
        atomic_write(&p, b"first").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"first");
        atomic_write(&p, b"second-longer").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"second-longer");
        assert!(!tmp_path(&p).exists(), "tmp must be renamed away");
    }

    #[test]
    fn short_write_leaves_previous_state_and_torn_tmp() {
        let d = tdir("short");
        let p = d.join("state.bin");
        atomic_write(&p, b"good old state").unwrap();
        inject_failure(Some(FailPoint::ShortWrite));
        let err = atomic_write(&p, b"new state that dies").unwrap_err();
        assert!(err.to_string().contains("injected"));
        assert_eq!(fs::read(&p).unwrap(), b"good old state");
        let torn = fs::read(tmp_path(&p)).unwrap();
        assert!(torn.len() < b"new state that dies".len());
        assert!(!failure_armed(), "one-shot hook disarms itself");
        // A later retry succeeds and clears the torn tmp.
        atomic_write(&p, b"new state that lives").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"new state that lives");
    }

    #[test]
    fn fsync_and_rename_failures_keep_previous_state() {
        let d = tdir("fsync");
        let p = d.join("state.bin");
        atomic_write(&p, b"v1").unwrap();
        for point in [FailPoint::Fsync, FailPoint::Rename] {
            inject_failure(Some(point));
            assert!(atomic_write(&p, b"v2").is_err());
            assert_eq!(fs::read(&p).unwrap(), b"v1", "{point:?}");
        }
        inject_failure(None);
        atomic_write(&p, b"v2").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"v2");
    }

    #[test]
    fn append_durable_appends() {
        let d = tdir("append");
        let p = d.join("log.jsonl");
        append_durable(&p, b"a\n").unwrap();
        append_durable(&p, b"b\n").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"a\nb\n");
        inject_failure(Some(FailPoint::ShortWrite));
        assert!(append_durable(&p, b"cccccccc\n").is_err());
        let got = fs::read(&p).unwrap();
        assert!(got.starts_with(b"a\nb\n"));
        assert!(got.len() < b"a\nb\ncccccccc\n".len(), "torn tail");
    }

    #[test]
    fn tmp_path_appends_suffix() {
        assert_eq!(
            tmp_path(Path::new("/x/y/ckpt.bin")),
            Path::new("/x/y/ckpt.bin.tmp")
        );
    }
}
