//! Identifiers for the hardware units of a multi-chip GPU.
//!
//! All identifiers are small copyable newtypes ([`ChipId`], [`ClusterId`],
//! [`SliceId`], [`ChannelId`]). Units that exist per chip (SM clusters, LLC
//! slices, memory channels) are identified by a `(chip, index)` pair so that
//! the same code can address "slice 3 of chip 1" without ambiguity.

use std::fmt;

/// Identifies one GPU chip (a chip/module in the multi-chip package).
///
/// # Example
/// ```
/// use mcgpu_types::ChipId;
/// let c = ChipId(2);
/// assert_eq!(c.index(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChipId(pub u8);

impl ChipId {
    /// The chip index as a `usize`, for indexing per-chip arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterate over all chips of a machine with `n` chips.
    pub fn all(n: usize) -> impl Iterator<Item = ChipId> {
        (0..n).map(|i| ChipId(i as u8))
    }
}

impl fmt::Display for ChipId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chip{}", self.0)
    }
}

/// Identifies one SM cluster (two SMs sharing a NoC port) within a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClusterId {
    /// The chip this cluster belongs to.
    pub chip: ChipId,
    /// The cluster index within the chip.
    pub index: u16,
}

impl ClusterId {
    /// Create a cluster id from a chip and an intra-chip index.
    #[inline]
    pub fn new(chip: ChipId, index: usize) -> Self {
        ClusterId {
            chip,
            index: index as u16,
        }
    }

    /// Flat index across the whole machine given `clusters_per_chip`.
    #[inline]
    pub fn flat(self, clusters_per_chip: usize) -> usize {
        self.chip.index() * clusters_per_chip + self.index as usize
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:sm{}", self.chip, self.index)
    }
}

/// Identifies one LLC slice within a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SliceId {
    /// The chip this slice belongs to.
    pub chip: ChipId,
    /// The slice index within the chip.
    pub index: u16,
}

impl SliceId {
    /// Create a slice id from a chip and an intra-chip index.
    #[inline]
    pub fn new(chip: ChipId, index: usize) -> Self {
        SliceId {
            chip,
            index: index as u16,
        }
    }

    /// Flat index across the whole machine given `slices_per_chip`.
    #[inline]
    pub fn flat(self, slices_per_chip: usize) -> usize {
        self.chip.index() * slices_per_chip + self.index as usize
    }
}

impl fmt::Display for SliceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:llc{}", self.chip, self.index)
    }
}

/// Identifies one DRAM channel within a chip's memory partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChannelId {
    /// The chip whose memory partition hosts this channel.
    pub chip: ChipId,
    /// The channel index within the partition.
    pub index: u16,
}

impl ChannelId {
    /// Create a channel id from a chip and an intra-partition index.
    #[inline]
    pub fn new(chip: ChipId, index: usize) -> Self {
        ChannelId {
            chip,
            index: index as u16,
        }
    }

    /// Flat index across the whole machine given `channels_per_chip`.
    #[inline]
    pub fn flat(self, channels_per_chip: usize) -> usize {
        self.chip.index() * channels_per_chip + self.index as usize
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:mc{}", self.chip, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_all_enumerates() {
        let chips: Vec<_> = ChipId::all(4).collect();
        assert_eq!(chips, vec![ChipId(0), ChipId(1), ChipId(2), ChipId(3)]);
    }

    #[test]
    fn flat_indices_are_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for chip in ChipId::all(4) {
            for i in 0..16 {
                assert!(seen.insert(SliceId::new(chip, i).flat(16)));
            }
        }
        assert_eq!(seen.len(), 64);
        assert_eq!(*seen.iter().max().unwrap(), 63);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(ChipId(3).to_string(), "chip3");
        assert_eq!(ClusterId::new(ChipId(1), 7).to_string(), "chip1:sm7");
        assert_eq!(SliceId::new(ChipId(0), 2).to_string(), "chip0:llc2");
        assert_eq!(ChannelId::new(ChipId(2), 5).to_string(), "chip2:mc5");
    }
}
