//! Minimal JSON reader for the run journal and the golden-stats format.
//!
//! The workspace has no registry access, so it cannot pull `serde_json`;
//! this module implements just enough of RFC 8259 to read back what the
//! workspace itself writes: the canonical `RunStats` JSON emitted by
//! `mcgpu_sim::stats` and the JSONL records of the sweep run journal.
//! Numbers keep their source text (see [`JsonValue::Number`]) so a
//! parse → re-emit round trip is byte-exact — the property the resumable
//! sweep journal's "replayed cells are byte-identical" guarantee rests on.
//!
//! # Example
//! ```
//! use mcgpu_types::json::{parse, JsonValue};
//!
//! let v = parse(r#"{"cycles": 42, "label": "SAC", "ok": true}"#).unwrap();
//! assert_eq!(v.get("cycles").and_then(JsonValue::as_u64), Some(42));
//! assert_eq!(v.get("label").and_then(JsonValue::as_str), Some("SAC"));
//! ```

use crate::error::ParseError;

/// A parsed JSON value.
///
/// Object members keep their source order (the canonical formats this
/// module reads are order-sensitive), and numbers keep their exact source
/// text so nothing is lost to binary/decimal conversion.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text (use [`JsonValue::as_u64`] /
    /// [`JsonValue::as_f64`] to interpret it).
    Number(String),
    /// A string, with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, members in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member `key` of an object (`None` for other variants or a missing
    /// key).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is an unsigned integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document.
///
/// # Errors
/// [`ParseError`] with a byte offset when the input is not valid JSON or
/// has trailing non-whitespace.
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Escape `s` as the *contents* of a JSON string literal (no surrounding
/// quotes). The inverse of the unescaping [`parse`] performs, used to embed
/// multi-line canonical documents inside single-line JSONL records.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Incremental writer for the workspace's canonical JSON form: fixed key
/// order (caller-controlled), 2-space indentation, floats in Rust's
/// shortest-roundtrip `{:?}` form, strings escaped through
/// [`escape_into`]. Byte equality of two documents written this way is
/// exactly bit equality of what was written — the property the golden
/// snapshots, the sweep journal, and the figure-regression reports all
/// rest on.
///
/// # Example
/// ```
/// use mcgpu_types::json::CanonicalWriter;
///
/// let mut w = CanonicalWriter::new();
/// w.open();
/// w.str_field("name", "SAC");
/// w.f64_field("speedup", 1.25);
/// w.close();
/// assert_eq!(w.finish(), "{\n  \"name\": \"SAC\",\n  \"speedup\": 1.25\n}\n");
/// ```
#[derive(Debug, Default)]
pub struct CanonicalWriter {
    out: String,
    indent: usize,
    has_member: Vec<bool>,
}

impl CanonicalWriter {
    /// An empty writer.
    pub fn new() -> Self {
        CanonicalWriter::default()
    }

    fn member_separator(&mut self) {
        if let Some(has) = self.has_member.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
        if !self.out.is_empty() {
            self.out.push('\n');
        }
    }

    fn newline_key(&mut self, key: &str) {
        self.member_separator();
        self.out.push_str(&"  ".repeat(self.indent));
        self.out.push('"');
        self.out.push_str(key);
        self.out.push_str("\": ");
    }

    /// Open an object (`{`). Pair with [`CanonicalWriter::close`].
    pub fn open(&mut self) {
        self.out.push('{');
        self.indent += 1;
        self.has_member.push(false);
    }

    /// Close the innermost object (`}`).
    pub fn close(&mut self) {
        self.indent -= 1;
        self.has_member.pop();
        self.out.push('\n');
        self.out.push_str(&"  ".repeat(self.indent));
        self.out.push('}');
    }

    /// `"key": "value"` with escaping.
    pub fn str_field(&mut self, key: &str, v: &str) {
        self.newline_key(key);
        self.out.push('"');
        escape_into(v, &mut self.out);
        self.out.push('"');
    }

    /// `"key": 42`.
    pub fn u64_field(&mut self, key: &str, v: u64) {
        self.newline_key(key);
        self.out.push_str(&v.to_string());
    }

    /// `"key": 1.25` in shortest-roundtrip form (`{:?}`), so the value
    /// parses back bit-identically.
    pub fn f64_field(&mut self, key: &str, v: f64) {
        self.newline_key(key);
        self.out.push_str(&format!("{v:?}"));
    }

    /// `"key": true`.
    pub fn bool_field(&mut self, key: &str, v: bool) {
        self.newline_key(key);
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// `"key": { ... }` with the members written by `body`.
    pub fn object_field(&mut self, key: &str, body: impl FnOnce(&mut Self)) {
        self.newline_key(key);
        self.open();
        body(self);
        self.close();
    }

    /// `"key": [ ... ]` with `len` elements, each written by
    /// `item(writer, index)` — typically an [`CanonicalWriter::open`] /
    /// [`CanonicalWriter::close`] pair for an object element.
    pub fn array_field(&mut self, key: &str, len: usize, mut item: impl FnMut(&mut Self, usize)) {
        self.newline_key(key);
        if len == 0 {
            self.out.push_str("[]");
            return;
        }
        self.out.push('[');
        self.indent += 1;
        self.has_member.push(false);
        for i in 0..len {
            self.member_separator();
            self.out.push_str(&"  ".repeat(self.indent));
            item(self, i);
        }
        self.indent -= 1;
        self.has_member.pop();
        self.out.push('\n');
        self.out.push_str(&"  ".repeat(self.indent));
        self.out.push(']');
    }

    /// `"key": [1.5, 2.5, ...]` on one line (for short numeric vectors).
    pub fn f64_array_field(&mut self, key: &str, vs: &[f64]) {
        self.newline_key(key);
        self.out.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.out.push_str(&format!("{v:?}"));
        }
        self.out.push(']');
    }

    /// `"key": ["a", "b", ...]` on one line (for short string vectors).
    pub fn str_array_field(&mut self, key: &str, vs: &[&str]) {
        self.newline_key(key);
        self.out.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.out.push('"');
            escape_into(v, &mut self.out);
            self.out.push('"');
        }
        self.out.push(']');
    }

    /// Terminate the document with a trailing newline and return it.
    pub fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &str) -> ParseError {
        ParseError::new(format!("{reason} (at byte {})", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our writers;
                            // reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid; copy the raw bytes of the char).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("slice on char boundaries"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .to_string();
        if text.parse::<f64>().is_err() {
            return Err(self.err("malformed number"));
        }
        Ok(JsonValue::Number(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" 42 ").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": false}], "c": "x"}"#).unwrap();
        let arr = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
    }

    #[test]
    fn numbers_keep_source_text() {
        // 2^63 + 1 does not fit f64 exactly; the text survives parsing.
        let v = parse("9223372036854775809").unwrap();
        assert_eq!(v, JsonValue::Number("9223372036854775809".into()));
        assert_eq!(v.as_u64(), Some(9223372036854775809));
    }

    #[test]
    fn escape_round_trips() {
        let original = "line1\nline2\t\"quoted\" \\slash\u{1}";
        let mut escaped = String::new();
        escape_into(original, &mut escaped);
        let parsed = parse(&format!("\"{escaped}\"")).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("true false").is_err());
        // A truncated journal line (the crash-safety case) is an error, not
        // a partial value.
        assert!(parse(r#"{"outcome": "ok", "stats": "{\"cy"#).is_err());
    }

    #[test]
    fn object_lookup_preserves_first_match_and_order(// canonical writers never duplicate keys; first wins by construction
    ) {
        let v = parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").and_then(JsonValue::as_u64), Some(1));
    }
}
