//! Common vocabulary types for the multi-chip GPU simulator.
//!
//! This crate defines the identifiers, address arithmetic, packet formats and
//! machine configuration shared by every other crate in the workspace. It has
//! no dependencies and models the baseline system of Table 3 of the SAC paper
//! (Zhang et al., ISCA 2023): a 4-chip GPU in which every chip hosts SM
//! clusters, LLC slices and memory channels, connected by an intra-chip
//! crossbar NoC and an inter-chip ring.
//!
//! # Example
//!
//! ```
//! use mcgpu_types::{MachineConfig, Address};
//!
//! let cfg = MachineConfig::paper_baseline();
//! assert_eq!(cfg.chips, 4);
//! assert_eq!(cfg.total_llc_bytes(), 16 << 20);
//!
//! let a = Address::new(0x1_0040);
//! assert_eq!(a.line(cfg.line_size).index(), 0x1_0040 / 128);
//! ```

pub mod addr;
pub mod budget;
pub mod ckpt;
pub mod config;
pub mod error;
pub mod expect;
pub mod fault;
pub mod fsio;
pub mod ids;
pub mod json;
pub mod mode;
pub mod obs;
pub mod packet;
pub mod pipe;
pub mod serve;

pub use addr::{Address, LineAddr, PageAddr, SectorId};
pub use budget::BandwidthBudget;
pub use ckpt::{CkptError, CkptResult, Dec, Enc};
pub use config::{
    CoherenceKind, LlcOrgKind, MachineConfig, MemoryInterface, PolicyCtx, ScaleFactor,
    TopologyKind, GB_S,
};
pub use error::{ConfigError, JournalError, ParseError, TraceError};
pub use expect::{
    Check, CrossvalField, Expectation, ExpectationSet, Finding, Metric, Report, Severity, Verdict,
    EXPECT_SCHEMA, REPORT_SCHEMA,
};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use ids::{ChannelId, ChipId, ClusterId, SliceId};
pub use mode::{EngineMode, ModeDescriptor, ENGINE_MODES};
pub use obs::{ObsConfig, ObsLevel};
pub use packet::{AccessKind, MemAccess, Request, RequestId, Response, ResponseOrigin};
pub use pipe::Pipe;
pub use serve::{CellPhase, RequestPhase, ServeErrorCode};
