//! Engine execution modes: the two tiers of the two-tier engine.
//!
//! The simulator can evaluate a (configuration × benchmark × organization)
//! cell at two fidelities:
//!
//! * **`cycle`** — the cycle-stepped (optionally event-skipping) engine.
//!   Ground truth: every queue, credit and cache is modeled per cycle.
//! * **`fast`** — the analytic locality estimator built on the EAB model.
//!   No cycle simulation at all: per-kernel reuse/sharing profiles are
//!   extracted from the trace once and pushed through closed-form capacity
//!   and bandwidth formulas. Orders of magnitude faster; accuracy is
//!   cross-validated against the cycle engine by the `crossval` binary and
//!   pinned in `expectations/crossval.json`.
//!
//! Mode selection mirrors the LLC-organization registry: CLI tokens are
//! validated against [`ENGINE_MODES`] up front, `--list-modes` prints the
//! table, and journal records are stamped with the mode so a resumed sweep
//! cannot silently mix fidelities.

/// How a simulation cell is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineMode {
    /// Cycle-stepped simulation (ground truth).
    #[default]
    Cycle,
    /// Analytic locality estimation (no cycle simulation).
    Fast,
}

/// One engine mode's registry entry: how the CLI names it and what it is.
#[derive(Debug, Clone, Copy)]
pub struct ModeDescriptor {
    /// The mode.
    pub mode: EngineMode,
    /// Canonical CLI token (`--mode <token>`).
    pub token: &'static str,
    /// One-line description for `--list-modes`.
    pub summary: &'static str,
}

/// All engine modes, in fidelity order. CLI parsing and `--list-modes`
/// quote this table, so a new mode needs only a row here and an engine
/// entry point.
pub const ENGINE_MODES: [ModeDescriptor; 2] = [
    ModeDescriptor {
        mode: EngineMode::Cycle,
        token: "cycle",
        summary: "cycle-stepped simulation (ground truth; supports --skip-idle)",
    },
    ModeDescriptor {
        mode: EngineMode::Fast,
        token: "fast",
        summary: "analytic EAB/locality estimator (no cycle simulation; cross-validated)",
    },
];

impl EngineMode {
    /// Every mode, in registry order.
    pub const ALL: [EngineMode; 2] = [EngineMode::Cycle, EngineMode::Fast];

    /// The registry row for this mode.
    pub fn descriptor(self) -> &'static ModeDescriptor {
        ENGINE_MODES
            .iter()
            .find(|d| d.mode == self)
            .expect("every engine mode is registered")
    }

    /// Canonical CLI token (also the journal stamp).
    pub fn token(self) -> &'static str {
        self.descriptor().token
    }

    /// Resolve a CLI token to its mode.
    pub fn from_token(token: &str) -> Option<EngineMode> {
        ENGINE_MODES
            .iter()
            .find(|d| d.token == token)
            .map(|d| d.mode)
    }

    /// Every registered CLI token, in registry order — the vocabulary
    /// quoted by unknown-mode errors.
    pub fn tokens() -> Vec<&'static str> {
        ENGINE_MODES.iter().map(|d| d.token).collect()
    }
}

impl std::fmt::Display for EngineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_mode_once() {
        assert_eq!(ENGINE_MODES.len(), EngineMode::ALL.len());
        for mode in EngineMode::ALL {
            assert_eq!(mode.descriptor().mode, mode);
            assert_eq!(EngineMode::from_token(mode.token()), Some(mode));
        }
    }

    #[test]
    fn unknown_tokens_are_rejected() {
        assert_eq!(EngineMode::from_token("warp-speed"), None);
        assert_eq!(EngineMode::from_token(""), None);
        assert_eq!(EngineMode::tokens(), vec!["cycle", "fast"]);
    }

    #[test]
    fn default_is_cycle() {
        assert_eq!(EngineMode::default(), EngineMode::Cycle);
    }
}
