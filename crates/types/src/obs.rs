//! Observability configuration: how much the simulator records about a run.
//!
//! The observability layer (latency histograms, epoch timelines and the
//! Chrome-trace sink in `mcgpu-sim`) is strictly read-only: it observes the
//! machine but never feeds back into it, so enabling any level leaves the
//! simulated results byte-identical to an unobserved run. The level only
//! controls how much is *recorded*.
//!
//! The default is [`ObsLevel::Off`], which costs one branch per engine hook
//! and allocates nothing.

use crate::error::ConfigError;

/// How much observability data the simulator records during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsLevel {
    /// Record nothing (the default; near-zero overhead).
    #[default]
    Off,
    /// Record latency histograms and the per-epoch timeline.
    Metrics,
    /// Everything in [`ObsLevel::Metrics`] plus the Chrome `trace_event`
    /// sink (kernel and reconfiguration spans, per-chip counter tracks).
    Trace,
}

impl ObsLevel {
    /// Whether any observability data is recorded at this level.
    pub fn enabled(self) -> bool {
        self != ObsLevel::Off
    }

    /// Whether the event-trace sink is active at this level.
    pub fn trace_enabled(self) -> bool {
        self == ObsLevel::Trace
    }

    /// Diagnostic label.
    pub fn label(self) -> &'static str {
        match self {
            ObsLevel::Off => "off",
            ObsLevel::Metrics => "metrics",
            ObsLevel::Trace => "trace",
        }
    }
}

/// Observability configuration for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// What to record.
    pub level: ObsLevel,
    /// Timeline epoch window in cycles: one `EpochSample` row (defined by
    /// the simulator's observability module) is
    /// captured every `epoch_window` cycles (plus one trailing partial
    /// epoch at run end).
    pub epoch_window: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig::off()
    }
}

impl ObsConfig {
    /// Default timeline window (cycles per epoch sample).
    pub const DEFAULT_EPOCH_WINDOW: u64 = 10_000;

    /// Observability disabled (the default).
    pub fn off() -> Self {
        ObsConfig {
            level: ObsLevel::Off,
            epoch_window: Self::DEFAULT_EPOCH_WINDOW,
        }
    }

    /// Histograms + timeline at the default epoch window.
    pub fn metrics() -> Self {
        ObsConfig {
            level: ObsLevel::Metrics,
            epoch_window: Self::DEFAULT_EPOCH_WINDOW,
        }
    }

    /// Histograms + timeline + the Chrome-trace sink.
    pub fn trace() -> Self {
        ObsConfig {
            level: ObsLevel::Trace,
            epoch_window: Self::DEFAULT_EPOCH_WINDOW,
        }
    }

    /// Override the timeline epoch window.
    pub fn with_epoch_window(mut self, cycles: u64) -> Self {
        self.epoch_window = cycles;
        self
    }

    /// Validate the configuration.
    ///
    /// # Errors
    /// [`ConfigError`] when observability is enabled with a zero epoch
    /// window (the timeline sampler divides the run by it).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.level.enabled() && self.epoch_window == 0 {
            return Err(ConfigError::new(
                "observability epoch window must be positive",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off() {
        let cfg = ObsConfig::default();
        assert_eq!(cfg.level, ObsLevel::Off);
        assert!(!cfg.level.enabled());
        assert!(!cfg.level.trace_enabled());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn levels_nest() {
        assert!(ObsLevel::Metrics.enabled());
        assert!(!ObsLevel::Metrics.trace_enabled());
        assert!(ObsLevel::Trace.enabled());
        assert!(ObsLevel::Trace.trace_enabled());
    }

    #[test]
    fn zero_window_is_rejected_only_when_enabled() {
        assert!(ObsConfig::metrics()
            .with_epoch_window(0)
            .validate()
            .is_err());
        assert!(ObsConfig::off().with_epoch_window(0).validate().is_ok());
    }
}
