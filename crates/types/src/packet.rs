//! Memory access and network packet types.
//!
//! A [`MemAccess`] is what an SM issues (a load or store to a byte address).
//! An L1 miss turns it into a [`Request`] packet that traverses the NoC and
//! possibly the inter-chip ring, and eventually produces a [`Response`]
//! carrying the cache line back. The [`ResponseOrigin`] records where the
//! data was found, which drives the paper's Fig. 10 effective-LLC-bandwidth
//! breakdown.

use crate::addr::Address;
use crate::ids::{ChipId, ClusterId};

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read access (load).
    Read,
    /// A write access (store). L1s are write-through, so every store
    /// generates write traffic towards the LLC.
    Write,
}

impl AccessKind {
    /// Whether this is a write.
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// One memory instruction as issued by an SM cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Byte address accessed.
    pub addr: Address,
    /// Load or store.
    pub kind: AccessKind,
}

impl MemAccess {
    /// A read of `addr`.
    pub fn read(addr: impl Into<Address>) -> Self {
        MemAccess {
            addr: addr.into(),
            kind: AccessKind::Read,
        }
    }

    /// A write of `addr`.
    pub fn write(addr: impl Into<Address>) -> Self {
        MemAccess {
            addr: addr.into(),
            kind: AccessKind::Write,
        }
    }
}

/// Unique identifier of an in-flight request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Size in bytes of a request packet header on the network.
pub const REQ_HEADER_BYTES: u64 = 16;
/// Size in bytes of the data payload carried by a write request (one
/// coalesced 32 B sector; GPUs coalesce stores at sector granularity).
pub const WRITE_PAYLOAD_BYTES: u64 = 32;
/// Size in bytes of a response header (acks, invalidations).
pub const RSP_HEADER_BYTES: u64 = 16;

/// A memory request travelling from an SM cluster towards an LLC slice or
/// memory partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// Unique id; the matching [`Response`] carries the same id.
    pub id: RequestId,
    /// The cluster that issued the L1 miss.
    pub origin: ClusterId,
    /// The access being performed.
    pub access: MemAccess,
    /// The chip owning the memory page (first-touch home).
    pub home: ChipId,
}

impl Request {
    /// Bytes this request occupies on a network link.
    #[inline]
    pub fn wire_bytes(&self) -> u64 {
        match self.access.kind {
            AccessKind::Read => REQ_HEADER_BYTES,
            AccessKind::Write => REQ_HEADER_BYTES + WRITE_PAYLOAD_BYTES,
        }
    }

    /// Whether the issuing cluster is on the page's home chip.
    #[inline]
    pub fn is_local(&self) -> bool {
        self.origin.chip == self.home
    }
}

/// Where a response's data was found (Fig. 10 breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResponseOrigin {
    /// Hit in an LLC slice on the requesting chip.
    LocalLlc,
    /// Hit in an LLC slice on another chip.
    RemoteLlc,
    /// Served by the requesting chip's memory partition.
    LocalMem,
    /// Served by another chip's memory partition.
    RemoteMem,
}

impl ResponseOrigin {
    /// All origins, in the paper's Fig. 10 legend order.
    pub const ALL: [ResponseOrigin; 4] = [
        ResponseOrigin::LocalLlc,
        ResponseOrigin::RemoteLlc,
        ResponseOrigin::LocalMem,
        ResponseOrigin::RemoteMem,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ResponseOrigin::LocalLlc => "local LLC",
            ResponseOrigin::RemoteLlc => "remote LLC",
            ResponseOrigin::LocalMem => "local mem",
            ResponseOrigin::RemoteMem => "remote mem",
        }
    }

    /// Whether the data came from an LLC (hit) rather than DRAM.
    pub fn is_llc(self) -> bool {
        matches!(self, ResponseOrigin::LocalLlc | ResponseOrigin::RemoteLlc)
    }

    /// Whether the data came from the requesting chip.
    pub fn is_local(self) -> bool {
        matches!(self, ResponseOrigin::LocalLlc | ResponseOrigin::LocalMem)
    }
}

impl std::fmt::Display for ResponseOrigin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A response travelling back to the requesting SM cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Response {
    /// Id of the request this answers.
    pub id: RequestId,
    /// Destination cluster.
    pub dest: ClusterId,
    /// The access that was performed.
    pub access: MemAccess,
    /// Where the data was found.
    pub origin: ResponseOrigin,
}

impl Response {
    /// Bytes this response occupies on a network link: a full cache line for
    /// reads, a small ack for writes.
    #[inline]
    pub fn wire_bytes(&self, line_size: u64) -> u64 {
        match self.access.kind {
            AccessKind::Read => RSP_HEADER_BYTES + line_size,
            AccessKind::Write => RSP_HEADER_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClusterId;

    fn req(kind: AccessKind, origin_chip: u8, home: u8) -> Request {
        Request {
            id: RequestId(1),
            origin: ClusterId::new(ChipId(origin_chip), 0),
            access: MemAccess {
                addr: Address::new(0x1000),
                kind,
            },
            home: ChipId(home),
        }
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(req(AccessKind::Read, 0, 0).wire_bytes(), 16);
        assert_eq!(req(AccessKind::Write, 0, 0).wire_bytes(), 48);
        let rsp = Response {
            id: RequestId(1),
            dest: ClusterId::new(ChipId(0), 0),
            access: MemAccess::read(0u64),
            origin: ResponseOrigin::LocalLlc,
        };
        assert_eq!(rsp.wire_bytes(128), 144);
        let ack = Response {
            access: MemAccess::write(0u64),
            ..rsp
        };
        assert_eq!(ack.wire_bytes(128), 16);
    }

    #[test]
    fn locality() {
        assert!(req(AccessKind::Read, 2, 2).is_local());
        assert!(!req(AccessKind::Read, 2, 3).is_local());
    }

    #[test]
    fn origin_classification() {
        assert!(ResponseOrigin::LocalLlc.is_llc());
        assert!(ResponseOrigin::RemoteLlc.is_llc());
        assert!(!ResponseOrigin::LocalMem.is_llc());
        assert!(ResponseOrigin::LocalMem.is_local());
        assert!(!ResponseOrigin::RemoteMem.is_local());
        let labels: std::collections::HashSet<_> =
            ResponseOrigin::ALL.iter().map(|o| o.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
