//! A bandwidth- and latency-limited FIFO pipe.
//!
//! [`Pipe`] is the single queueing primitive every bandwidth-limited resource
//! in the simulator is built from: NoC ports, inter-chip links, LLC slice
//! ports and DRAM channels. Items enter a bounded waiting queue, start
//! "transmission" when the [`BandwidthBudget`]
//! admits their size, and become available `latency` cycles later.

use crate::budget::BandwidthBudget;
use std::collections::VecDeque;

/// A FIFO with a per-cycle byte budget and a fixed traversal latency.
///
/// # Example
/// ```
/// use mcgpu_types::pipe::Pipe;
///
/// // 16 B/cycle, 10-cycle latency, queue of 4 entries.
/// let mut link: Pipe<&str> = Pipe::new(16.0, 10, Some(4));
/// link.try_push("hello", 16).unwrap();
/// for now in 0..=10 {
///     link.tick(now);
///     if let Some(msg) = link.pop_ready(now) {
///         assert_eq!(msg, "hello");
///         assert!(now >= 10);
///     }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Pipe<T> {
    budget: BandwidthBudget,
    latency: u64,
    capacity: Option<usize>,
    waiting: VecDeque<(T, u64)>,
    in_flight: VecDeque<(u64, T)>,
}

impl<T> Pipe<T> {
    /// Create a pipe with `rate` bytes/cycle, `latency` cycles and an
    /// optional waiting-queue bound (`None` = unbounded).
    pub fn new(rate: f64, latency: u64, capacity: Option<usize>) -> Self {
        Pipe {
            budget: BandwidthBudget::new(rate),
            latency,
            capacity,
            waiting: VecDeque::new(),
            in_flight: VecDeque::new(),
        }
    }

    /// Create a pipe that is latency-only (unlimited bandwidth).
    pub fn latency_only(latency: u64) -> Self {
        Pipe {
            budget: BandwidthBudget::unlimited(),
            latency,
            capacity: None,
            waiting: VecDeque::new(),
            in_flight: VecDeque::new(),
        }
    }

    /// Enqueue an item of `bytes` size.
    ///
    /// # Errors
    /// Returns the item back if the waiting queue is full (backpressure).
    pub fn try_push(&mut self, item: T, bytes: u64) -> Result<(), T> {
        if let Some(cap) = self.capacity {
            if self.waiting.len() >= cap {
                return Err(item);
            }
        }
        self.waiting.push_back((item, bytes));
        Ok(())
    }

    /// Whether a push would currently succeed.
    pub fn can_push(&self) -> bool {
        self.capacity.is_none_or(|cap| self.waiting.len() < cap)
    }

    /// Advance one cycle: replenish bandwidth and start transmitting queued
    /// items whose bytes fit. Call exactly once per cycle with the current
    /// cycle number.
    pub fn tick(&mut self, now: u64) {
        self.budget.refill();
        while let Some(&(_, bytes)) = self.waiting.front() {
            if !self.budget.try_consume(bytes) {
                break;
            }
            let (item, _) = self.waiting.pop_front().expect("front checked");
            self.in_flight.push_back((now + self.latency, item));
        }
    }

    /// Pop the next item whose latency has elapsed, if any.
    pub fn pop_ready(&mut self, now: u64) -> Option<T> {
        match self.in_flight.front() {
            Some(&(ready, _)) if ready <= now => self.in_flight.pop_front().map(|(_, t)| t),
            _ => None,
        }
    }

    /// Items still waiting to start transmission.
    pub fn queued(&self) -> usize {
        self.waiting.len()
    }

    /// Items in flight (transmitted, latency not yet elapsed).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether the pipe holds no items at all.
    pub fn is_empty(&self) -> bool {
        self.waiting.is_empty() && self.in_flight.is_empty()
    }

    /// Total items inside the pipe.
    pub fn len(&self) -> usize {
        self.waiting.len() + self.in_flight.len()
    }

    /// The configured bandwidth in bytes/cycle.
    pub fn rate(&self) -> f64 {
        self.budget.rate()
    }

    /// Rescale the pipe's bandwidth at runtime (fault injection). Queued
    /// and in-flight items are unaffected; only the admission rate of
    /// future items changes. A rate of `0.0` stalls the pipe's waiting
    /// queue entirely while still delivering what is already in flight.
    pub fn set_rate(&mut self, rate: f64) {
        self.budget.set_rate(rate);
    }

    /// Drain every item (used when reconfiguring; items are returned in
    /// queue order, in-flight first).
    pub fn drain(&mut self) -> Vec<T> {
        let mut out: Vec<T> = self.in_flight.drain(..).map(|(_, t)| t).collect();
        out.extend(self.waiting.drain(..).map(|(t, _)| t));
        out
    }

    /// Iterate over every item inside the pipe (in-flight first, then
    /// waiting), without disturbing state. Used by conservation audits to
    /// classify queue contents.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.in_flight
            .iter()
            .map(|(_, t)| t)
            .chain(self.waiting.iter().map(|(t, _)| t))
    }

    /// Whether ticking this pipe is a state no-op: it holds no items and
    /// its budget's credit has saturated at the cap (so the per-cycle
    /// [`BandwidthBudget::refill`] no longer changes the stored bits).
    /// This is the per-pipe precondition for idle-cycle skipping.
    #[inline]
    pub fn tick_is_noop(&self) -> bool {
        self.is_empty() && self.budget.refill_is_noop()
    }

    /// Serialize the full pipe state (budget, latency, capacity, both
    /// queues) into a checkpoint payload, encoding each item with `f`.
    pub fn save_with(
        &self,
        e: &mut crate::ckpt::Enc,
        mut f: impl FnMut(&mut crate::ckpt::Enc, &T),
    ) {
        self.budget.save(e);
        e.put_u64(self.latency);
        match self.capacity {
            None => e.put_bool(false),
            Some(cap) => {
                e.put_bool(true);
                e.put_usize(cap);
            }
        }
        e.put_seq_len(self.waiting.len());
        for (item, bytes) in &self.waiting {
            f(e, item);
            e.put_u64(*bytes);
        }
        e.put_seq_len(self.in_flight.len());
        for (ready, item) in &self.in_flight {
            e.put_u64(*ready);
            f(e, item);
        }
    }

    /// Deserialize a pipe saved by [`Pipe::save_with`], decoding each item
    /// with `f`.
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input.
    pub fn load_with(
        d: &mut crate::ckpt::Dec<'_>,
        mut f: impl FnMut(&mut crate::ckpt::Dec<'_>) -> crate::ckpt::CkptResult<T>,
    ) -> crate::ckpt::CkptResult<Self> {
        let budget = BandwidthBudget::load(d)?;
        let latency = d.get_u64()?;
        let capacity = if d.get_bool()? {
            Some(d.get_usize()?)
        } else {
            None
        };
        let n = d.get_seq_len()?;
        let mut waiting = VecDeque::with_capacity(n);
        for _ in 0..n {
            let item = f(d)?;
            let bytes = d.get_u64()?;
            waiting.push_back((item, bytes));
        }
        let n = d.get_seq_len()?;
        let mut in_flight = VecDeque::with_capacity(n);
        for _ in 0..n {
            let ready = d.get_u64()?;
            let item = f(d)?;
            in_flight.push_back((ready, item));
        }
        Ok(Pipe {
            budget,
            latency,
            capacity,
            waiting,
            in_flight,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_latency() {
        let mut p: Pipe<u32> = Pipe::new(100.0, 5, None);
        p.try_push(42, 10).unwrap();
        p.tick(0);
        for now in 0..5 {
            assert_eq!(p.pop_ready(now), None, "at {now}");
        }
        assert_eq!(p.pop_ready(5), Some(42));
        assert!(p.is_empty());
    }

    #[test]
    fn respects_bandwidth() {
        // 10 B/cycle, packets of 100 B: one packet starts roughly every 10
        // cycles.
        let mut p: Pipe<u32> = Pipe::new(10.0, 0, None);
        for i in 0..10 {
            p.try_push(i, 100).unwrap();
        }
        let mut done = Vec::new();
        for now in 0..100 {
            p.tick(now);
            while let Some(x) = p.pop_ready(now) {
                done.push((now, x));
            }
        }
        assert_eq!(done.len(), 10);
        // The last packet cannot complete before ~90 cycles.
        assert!(done.last().unwrap().0 >= 85, "{:?}", done.last());
        // FIFO order preserved.
        let order: Vec<u32> = done.iter().map(|&(_, x)| x).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn backpressure_on_full_queue() {
        let mut p: Pipe<u32> = Pipe::new(1.0, 0, Some(2));
        assert!(p.try_push(1, 8).is_ok());
        assert!(p.try_push(2, 8).is_ok());
        assert_eq!(p.try_push(3, 8), Err(3));
        assert!(!p.can_push());
        p.tick(0); // starts transmitting item 1
        assert!(p.can_push());
    }

    #[test]
    fn latency_only_is_unthrottled() {
        let mut p: Pipe<u32> = Pipe::latency_only(3);
        for i in 0..1000 {
            p.try_push(i, 1 << 20).unwrap();
        }
        p.tick(0);
        assert_eq!(p.in_flight(), 1000);
        let mut n = 0;
        while p.pop_ready(3).is_some() {
            n += 1;
        }
        assert_eq!(n, 1000);
    }

    #[test]
    fn drain_returns_everything() {
        let mut p: Pipe<u32> = Pipe::new(8.0, 10, None);
        p.try_push(1, 8).unwrap();
        p.try_push(2, 8).unwrap();
        p.tick(0);
        p.try_push(3, 8).unwrap();
        let all = p.drain();
        assert_eq!(all.len(), 3);
        assert!(p.is_empty());
    }

    #[test]
    fn iter_sees_in_flight_and_waiting() {
        let mut p: Pipe<u32> = Pipe::new(8.0, 10, None);
        p.try_push(1, 8).unwrap();
        p.tick(0); // 1 goes in flight
        p.try_push(2, 8).unwrap();
        let seen: Vec<u32> = p.iter().copied().collect();
        assert_eq!(seen, vec![1, 2]);
        assert_eq!(p.len(), 2); // non-destructive
    }
}
