//! Wire vocabulary for the sweep service daemon (`sac_serve`).
//!
//! The daemon speaks HTTP/1.1 with JSON bodies; this module pins down the
//! *meaning* of what crosses the wire — typed error codes with their HTTP
//! status mapping, and the lifecycle phases of a request and of one sweep
//! cell — so the server (`sac-bench`), the load generator, and any other
//! client agree on one closed set of machine-readable strings. Every enum
//! here round-trips through its `as_str`/`parse` pair, and the sets are
//! closed: an unknown string is a protocol error, not a new state.
//!
//! The daemon itself (listener, queueing, scheduling, recovery) lives in
//! `sac-bench`; this crate only defines vocabulary, keeping the dependency
//! direction identical to the rest of the workspace.

/// Machine-readable error code for a failed service call.
///
/// Sent as the `"error"` field of an error response body; the HTTP status
/// line carries [`ServeErrorCode::http_status`]. The set is closed — every
/// failure the daemon can report maps to exactly one code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeErrorCode {
    /// The request body or path could not be parsed or failed validation
    /// (unknown benchmark, unknown organization, rejected configuration).
    BadRequest,
    /// The referenced sweep request does not exist.
    NotFound,
    /// The HTTP method is not supported on this path.
    MethodNotAllowed,
    /// The request body exceeds the daemon's size cap.
    PayloadTooLarge,
    /// A sweep request with this id already exists with a *different*
    /// spec. Resubmitting the same id with the same spec is idempotent and
    /// succeeds; changing the spec under an id is rejected.
    SpecConflict,
    /// The admission queue or in-flight cell budget is full; the response
    /// carries a `Retry-After` header. Back off and resubmit.
    QueueFull,
    /// The daemon is shutting down and no longer admits work.
    ShuttingDown,
    /// An internal invariant failed while serving the call.
    Internal,
}

impl ServeErrorCode {
    /// Every code, for exhaustive round-trip tests.
    pub const ALL: [ServeErrorCode; 8] = [
        ServeErrorCode::BadRequest,
        ServeErrorCode::NotFound,
        ServeErrorCode::MethodNotAllowed,
        ServeErrorCode::PayloadTooLarge,
        ServeErrorCode::SpecConflict,
        ServeErrorCode::QueueFull,
        ServeErrorCode::ShuttingDown,
        ServeErrorCode::Internal,
    ];

    /// The wire string (the `"error"` field of an error body).
    pub fn as_str(self) -> &'static str {
        match self {
            ServeErrorCode::BadRequest => "bad-request",
            ServeErrorCode::NotFound => "not-found",
            ServeErrorCode::MethodNotAllowed => "method-not-allowed",
            ServeErrorCode::PayloadTooLarge => "payload-too-large",
            ServeErrorCode::SpecConflict => "spec-conflict",
            ServeErrorCode::QueueFull => "queue-full",
            ServeErrorCode::ShuttingDown => "shutting-down",
            ServeErrorCode::Internal => "internal",
        }
    }

    /// Parse the wire string back to a code.
    pub fn parse(s: &str) -> Option<ServeErrorCode> {
        ServeErrorCode::ALL.into_iter().find(|c| c.as_str() == s)
    }

    /// The HTTP status this code is reported under.
    pub fn http_status(self) -> u16 {
        match self {
            ServeErrorCode::BadRequest => 400,
            ServeErrorCode::NotFound => 404,
            ServeErrorCode::MethodNotAllowed => 405,
            ServeErrorCode::PayloadTooLarge => 413,
            ServeErrorCode::SpecConflict => 409,
            ServeErrorCode::QueueFull => 429,
            ServeErrorCode::ShuttingDown => 503,
            ServeErrorCode::Internal => 500,
        }
    }
}

impl std::fmt::Display for ServeErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Lifecycle phase of one sweep cell inside a request.
///
/// Terminal phases are [`CellPhase::Completed`] and
/// [`CellPhase::Quarantined`]; a cell never leaves a terminal phase, so a
/// client may stop polling once every cell reports one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellPhase {
    /// Admitted, waiting for a worker.
    Queued,
    /// Executing on the sweep pool.
    Running,
    /// Finished with canonical stats (freshly simulated or served from the
    /// shared result cache).
    Completed,
    /// Exhausted its retries or failed non-retryably; carries a typed
    /// error, never silently dropped.
    Quarantined,
}

impl CellPhase {
    /// Every phase, for exhaustive round-trip tests.
    pub const ALL: [CellPhase; 4] = [
        CellPhase::Queued,
        CellPhase::Running,
        CellPhase::Completed,
        CellPhase::Quarantined,
    ];

    /// The wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            CellPhase::Queued => "queued",
            CellPhase::Running => "running",
            CellPhase::Completed => "completed",
            CellPhase::Quarantined => "quarantined",
        }
    }

    /// Parse the wire string back to a phase.
    pub fn parse(s: &str) -> Option<CellPhase> {
        CellPhase::ALL.into_iter().find(|p| p.as_str() == s)
    }

    /// Whether the cell can still change state.
    pub fn terminal(self) -> bool {
        matches!(self, CellPhase::Completed | CellPhase::Quarantined)
    }
}

impl std::fmt::Display for CellPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Lifecycle phase of a whole sweep request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestPhase {
    /// Admitted; at least one cell is not yet terminal.
    Active,
    /// Every cell completed successfully.
    Completed,
    /// Every cell is terminal and at least one is quarantined. The request
    /// *terminated* — a typed per-cell error is a terminal answer, not a
    /// hang.
    Failed,
}

impl RequestPhase {
    /// Every phase, for exhaustive round-trip tests.
    pub const ALL: [RequestPhase; 3] = [
        RequestPhase::Active,
        RequestPhase::Completed,
        RequestPhase::Failed,
    ];

    /// The wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestPhase::Active => "active",
            RequestPhase::Completed => "completed",
            RequestPhase::Failed => "failed",
        }
    }

    /// Parse the wire string back to a phase.
    pub fn parse(s: &str) -> Option<RequestPhase> {
        RequestPhase::ALL.into_iter().find(|p| p.as_str() == s)
    }

    /// Whether the request has terminated (successfully or not).
    pub fn terminal(self) -> bool {
        !matches!(self, RequestPhase::Active)
    }
}

impl std::fmt::Display for RequestPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_round_trip_and_map_to_sane_statuses() {
        for code in ServeErrorCode::ALL {
            assert_eq!(ServeErrorCode::parse(code.as_str()), Some(code));
            assert!((400..=599).contains(&code.http_status()), "{code}");
        }
        assert_eq!(ServeErrorCode::parse("bogus"), None);
        assert_eq!(ServeErrorCode::QueueFull.http_status(), 429);
    }

    #[test]
    fn phases_round_trip() {
        for p in CellPhase::ALL {
            assert_eq!(CellPhase::parse(p.as_str()), Some(p));
        }
        for p in RequestPhase::ALL {
            assert_eq!(RequestPhase::parse(p.as_str()), Some(p));
        }
        assert_eq!(CellPhase::parse(""), None);
        assert_eq!(RequestPhase::parse("queued"), None);
    }

    #[test]
    fn terminality_matches_lifecycle() {
        assert!(!CellPhase::Queued.terminal());
        assert!(!CellPhase::Running.terminal());
        assert!(CellPhase::Completed.terminal());
        assert!(CellPhase::Quarantined.terminal());
        assert!(!RequestPhase::Active.terminal());
        assert!(RequestPhase::Completed.terminal());
        assert!(RequestPhase::Failed.terminal());
    }
}
