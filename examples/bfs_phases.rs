//! BFS time-varying behaviour (the paper's Fig. 12): watch instantaneous
//! throughput as SAC alternates between memory-side (K1) and SM-side (K2)
//! kernels.
//!
//! ```text
//! cargo run --release --example bfs_phases
//! ```

use mcgpu_sim::SimBuilder;
use mcgpu_trace::{generate, profiles, TraceParams};
use mcgpu_types::{LlcOrgKind, MachineConfig};

fn main() {
    let cfg = MachineConfig::experiment_baseline();
    let profile = profiles::by_name("BFS").expect("profile");
    let wl = generate(&cfg, &profile, &TraceParams::standard());

    let mut sim = SimBuilder::new(cfg)
        .organization(LlcOrgKind::Sac)
        .build()
        .expect("valid machine configuration");
    let mut last = 0u64;
    println!("{:>9} {:>12} {:>8}", "cycle", "accesses/cyc", "active");
    let window = 10_000;
    let stats = sim
        .run_observed(&wl, window, |cycle, done, active| {
            println!(
                "{:>9} {:>12.2} {:>8}",
                cycle,
                (done - last) as f64 / window as f64,
                active
            );
            last = done;
        })
        .expect("run");

    println!("\nSAC per-kernel decisions (K1 = frontier sweep, K2 = hot frontier):");
    for (i, r) in stats.sac_history.iter().enumerate() {
        println!(
            "  kernel {i} ({}): {}",
            if i % 2 == 0 { "K1" } else { "K2" },
            r.mode
        );
    }
}
