//! Explore the EAB analytical model (no simulation): a decision map over
//! the sharing spectrum, showing where the model flips between the
//! memory-side and SM-side organizations.
//!
//! ```text
//! cargo run --example eab_explorer
//! ```

use mcgpu_types::MachineConfig;
use sac::eab::{ArchBandwidth, EabInputs, EabModel};
use sac::LlcMode;

fn main() {
    let arch = ArchBandwidth::from_config(&MachineConfig::paper_baseline());
    let model = EabModel::new(arch);
    println!(
        "machine: B_intra={:.0} B_inter={:.0} B_LLC={:.0} B_mem={:.1} GB/s per chip\n",
        arch.b_intra, arch.b_inter, arch.b_llc, arch.b_mem
    );
    println!("decision map (rows: R_local; cols: predicted SM-side hit rate;");
    println!("memory-side hit fixed at 0.60, LSUs at 0.85; S = SM-side, m = memory-side)\n");
    print!("        ");
    for hs in (0..=10).map(|i| i as f64 / 10.0) {
        print!("{hs:>5.1}");
    }
    println!();
    for rl in (0..=10).map(|i| i as f64 / 10.0) {
        print!("rl={rl:<4.1} ");
        for hs in (0..=10).map(|i| i as f64 / 10.0) {
            let inputs = EabInputs {
                r_local: rl,
                llc_hit_memory_side: 0.60,
                llc_hit_sm_side: hs,
                lsu_memory_side: 0.85,
                lsu_sm_side: 0.85,
            };
            let d = model.decide(&inputs, 0.05);
            print!("{:>5}", if d == LlcMode::SmSide { "S" } else { "m" });
        }
        println!();
    }
    println!("\nreading the map: with lots of remote traffic (low R_local), replication");
    println!("wins unless it destroys the hit rate; purely local workloads never");
    println!("justify the reconfiguration (theta keeps the memory-side default).");
}
