//! Input-set sensitivity for one benchmark (the paper's Fig. 13): scaling
//! the input grows the shared working set past the LLC, flipping the
//! preferred organization — and SAC follows.
//!
//! ```text
//! cargo run --release --example input_scaling [BENCH]
//! ```

use mcgpu_sim::SimBuilder;
use mcgpu_trace::{generate, profiles, TraceParams};
use mcgpu_types::{LlcOrgKind, MachineConfig};

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "RN".into());
    let Some(profile) = profiles::by_name(&bench) else {
        eprintln!("unknown benchmark {bench}");
        std::process::exit(2);
    };
    let cfg = MachineConfig::experiment_baseline();
    println!("{bench}: speedup over memory-side per input scale\n");
    println!(
        "{:>8} {:>10} {:>8} {:>8} | SAC modes",
        "input", "true MB", "SM-side", "SAC"
    );
    for scale in [8.0, 4.0, 2.0, 1.0, 0.5, 0.25] {
        let params = TraceParams::standard().with_input_scale(scale);
        let wl = generate(&cfg, &profile, &params);
        let run = |org| {
            SimBuilder::new(cfg.clone())
                .organization(org)
                .build()
                .expect("valid machine configuration")
                .run(&wl)
                .expect("run")
        };
        let mem = run(LlcOrgKind::MemorySide);
        let sm = run(LlcOrgKind::SmSide);
        let sac = run(LlcOrgKind::Sac);
        let modes: String = sac
            .sac_history
            .iter()
            .map(|k| {
                if k.mode == sac::LlcMode::SmSide {
                    'S'
                } else {
                    'M'
                }
            })
            .collect();
        println!(
            "{:>7}x {:>10.2} {:>8.2} {:>8.2} | [{}]",
            scale,
            wl.layout.true_bytes() as f64 / (1 << 20) as f64,
            sm.speedup_over(&mem),
            sac.speedup_over(&mem),
            modes
        );
    }
}
