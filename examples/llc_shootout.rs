//! Compare all five LLC organizations on one benchmark.
//!
//! ```text
//! cargo run --release --example llc_shootout [BENCH]
//! ```
//!
//! BENCH defaults to SN; any Table 4 name works (RN, AN, SN, CFD, BFS, 3DC,
//! BS, BT, SRAD, GEMM, LUD, STEN, 3MM, BP, DWT, NN).

use mcgpu_sim::SimBuilder;
use mcgpu_trace::{generate, profiles, TraceParams};
use mcgpu_types::{LlcOrgKind, MachineConfig, ResponseOrigin};

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "SN".into());
    let Some(profile) = profiles::by_name(&bench) else {
        eprintln!("unknown benchmark {bench}");
        std::process::exit(2);
    };
    let cfg = MachineConfig::experiment_baseline();
    let wl = generate(&cfg, &profile, &TraceParams::standard());
    println!(
        "{bench} ({} preferred in the paper), {} accesses\n",
        profile.preference.label(),
        wl.total_accesses()
    );
    println!(
        "{:12} {:>9} {:>8} {:>9} {:>9} {:>10} {:>10}",
        "organization", "cycles", "speedup", "LLC miss", "local frac", "eff.bw/cyc", "ring B/cyc"
    );
    let mut base = None;
    for org in LlcOrgKind::ALL {
        let s = SimBuilder::new(cfg.clone())
            .organization(org)
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .expect("run");
        let speedup = base.map(|b: u64| b as f64 / s.cycles as f64).unwrap_or(1.0);
        if base.is_none() {
            base = Some(s.cycles);
        }
        println!(
            "{:12} {:>9} {:>8.2} {:>9.2} {:>10.2} {:>10.2} {:>10.0}",
            org.label(),
            s.cycles,
            speedup,
            s.llc_miss_rate(),
            s.llc_local_fraction,
            s.effective_llc_bandwidth(),
            s.ring_bytes as f64 / s.cycles as f64,
        );
        if org == LlcOrgKind::Sac {
            let origins: Vec<String> = ResponseOrigin::ALL
                .iter()
                .map(|&o| format!("{} {:.2}", o.label(), s.response_rate(o)))
                .collect();
            println!(
                "             SAC response origins/cycle: {}",
                origins.join(", ")
            );
        }
    }
}
