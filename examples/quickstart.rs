//! Quickstart: simulate one workload under SAC and see the per-kernel
//! decisions the EAB model makes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mcgpu_sim::SimBuilder;
use mcgpu_trace::{generate, profiles, TraceParams};
use mcgpu_types::{LlcOrgKind, MachineConfig};

fn main() {
    // A scaled-down version of the paper's Table 3 machine (all bandwidth
    // and capacity ratios preserved; see DESIGN.md).
    let cfg = MachineConfig::experiment_baseline();

    // BFS alternates a memory-side-preferred kernel (K1) and an
    // SM-side-preferred kernel (K2) — the paper's Fig. 12 example.
    let profile = profiles::by_name("BFS").expect("BFS is a Table 4 benchmark");
    let workload = generate(&cfg, &profile, &TraceParams::standard());
    println!(
        "generated {} ({} kernels, {} accesses, footprint {:.1} MiB scaled)",
        workload.name,
        workload.kernels.len(),
        workload.total_accesses(),
        workload.layout.footprint_bytes() as f64 / (1 << 20) as f64,
    );

    // Run the memory-side baseline and SAC.
    let baseline = SimBuilder::new(cfg.clone())
        .organization(LlcOrgKind::MemorySide)
        .build()
        .expect("valid machine configuration")
        .run(&workload)
        .expect("baseline run");
    let sac = SimBuilder::new(cfg)
        .organization(LlcOrgKind::Sac)
        .build()
        .expect("valid machine configuration")
        .run(&workload)
        .expect("SAC run");

    println!("\nper-kernel EAB decisions:");
    for (i, r) in sac.sac_history.iter().enumerate() {
        println!(
            "  kernel {i}: {:11}  (EAB memory-side {:>4.0} vs SM-side {:>4.0} GB/s, R_local {:.2})",
            r.mode.label(),
            r.eab_memory_side,
            r.eab_sm_side,
            r.inputs.r_local,
        );
    }
    println!(
        "\nSAC: {} cycles vs memory-side {} cycles -> {:.2}x speedup",
        sac.cycles,
        baseline.cycles,
        sac.speedup_over(&baseline)
    );
}
