#!/usr/bin/env bash
# CI figure-regression drill for the figcheck harness:
#
#   1. run the quick-volume suite journaled — the expectation set must pass;
#   2. replay the journal — the mcgpu-figcheck-v1 report must be
#      byte-identical;
#   3. SIGKILL a fresh journaled run mid-sweep — with mid-cell engine
#      checkpointing on a fine cycle grid, so the kill lands between two
#      checkpoints of a running cell — resume it (interrupted cells
#      continue mid-cycle from their snapshots), and require the same
#      report bytes again;
#   4. score a deliberately-impossible `shape` expectation (exit must be 2)
#      and an impossible `magnitude` expectation (exit must be 0): the gate
#      fires on shape only.
#
# Usage: scripts/ci_figcheck.sh  (from the repository root)
set -u -o pipefail

RES=results/ci_figcheck
rm -rf "$RES"
mkdir -p "$RES"

cargo build --release -p sac-bench --bin figcheck || exit 1

# 1. Full quick-volume run, journaled.
target/release/figcheck --quick --journal "$RES/suite.jsonl" \
    --report "$RES/a.json" | tee "$RES/a.scorecard"
RC=${PIPESTATUS[0]}
if (( RC != 0 )); then
    echo "FAIL: figcheck exited $RC on the quick sweep" >&2
    exit 1
fi

# 2. Replay the journal: nothing is re-simulated, the report must not
# change by a byte.
target/release/figcheck --quick --resume "$RES/suite.jsonl" \
    --report "$RES/b.json" > /dev/null || {
    echo "FAIL: journal replay did not complete" >&2
    exit 1
}
if ! cmp -s "$RES/a.json" "$RES/b.json"; then
    echo "FAIL: replayed report differs from the original" >&2
    exit 1
fi
echo "PASS: journal replay reproduced the report byte-identically"

# 3. Kill a fresh checkpointing run mid-sweep — in-flight cells snapshot
# every 4096 cycles, so the kill lands between two mid-cell checkpoints —
# then resume: interrupted cells continue mid-cycle from their snapshots
# and the report must not change by a byte.
target/release/figcheck --quick --journal "$RES/kill.jsonl" \
    --state-dir "$RES/state" --checkpoint-interval 4096 \
    --report "$RES/c.json" > /dev/null &
PID=$!
sleep 20
kill -9 "$PID" 2>/dev/null
wait "$PID" 2>/dev/null
if [[ ! -f "$RES/kill.jsonl" ]]; then
    echo "FAIL: no journal on disk after SIGKILL" >&2
    exit 1
fi
RECORDED=$(wc -l < "$RES/kill.jsonl")
SNAPS=$(ls "$RES/state"/*.ckpt 2>/dev/null | wc -l)
echo "journal holds $RECORDED record(s), state dir $SNAPS mid-cell snapshot(s) at kill time"
if [[ -f "$RES/c.json" ]]; then
    echo "WARN: sweep finished before the kill; resume path still exercised" >&2
fi
target/release/figcheck --quick --resume "$RES/kill.jsonl" \
    --state-dir "$RES/state" --checkpoint-interval 4096 \
    --report "$RES/c.json" 2> "$RES/resume.log" > /dev/null || {
    cat "$RES/resume.log" >&2
    echo "FAIL: resumed sweep did not complete" >&2
    exit 1
}
if ! cmp -s "$RES/a.json" "$RES/c.json"; then
    echo "FAIL: report differs after SIGKILL + mid-cell resume" >&2
    exit 1
fi
if (( SNAPS > 0 )) && ! grep -q "resumed .* from checkpoint at cycle" "$RES/resume.log"; then
    echo "FAIL: a snapshot was on disk but no cell resumed from it" >&2
    exit 1
fi
LEFT=$(ls "$RES/state"/*.ckpt 2>/dev/null | wc -l)
if (( LEFT != 0 )); then
    echo "FAIL: $LEFT stale snapshot(s) left after the resumed sweep completed" >&2
    exit 1
fi
echo "PASS: SIGKILL + mid-cell resume reproduced the report byte-identically"

# 4a. A shape expectation that cannot hold must gate (exit 2). Scored off
# the existing journal so no cell is re-simulated.
cat > "$RES/shape_drill.json" <<'EOF'
{
  "schema": "mcgpu-expect-v1",
  "source": "ci shape gating drill",
  "expectations": [
    {
      "id": "drill/RN/impossible",
      "figure": "fig08",
      "severity": "shape",
      "check": {
        "kind": "band",
        "value": {"metric": "speedup", "bench": "RN", "org": "SM-side"},
        "lo": 100.0,
        "hi": 200.0
      },
      "note": "CI drill: must fail and gate."
    }
  ]
}
EOF
target/release/figcheck --quick --resume "$RES/suite.jsonl" \
    --expectations "$RES/shape_drill.json" > /dev/null
RC=$?
if (( RC != 2 )); then
    echo "FAIL: impossible shape expectation exited $RC, want 2" >&2
    exit 1
fi
echo "PASS: shape violation gates with exit 2"

# 4b. The same impossible band at magnitude severity must warn, not gate.
sed 's/"severity": "shape"/"severity": "magnitude"/' \
    "$RES/shape_drill.json" > "$RES/magnitude_drill.json"
target/release/figcheck --quick --resume "$RES/suite.jsonl" \
    --expectations "$RES/magnitude_drill.json" > /dev/null
RC=$?
if (( RC != 0 )); then
    echo "FAIL: magnitude-only drift exited $RC, want 0" >&2
    exit 1
fi
echo "PASS: magnitude drift warns without gating"
