#!/usr/bin/env bash
# CI kill/resume drill: start a journaled sweep over the golden suite,
# SIGKILL it mid-run, resume from the journal, and require the final stats
# to be byte-identical to the committed golden snapshots.
#
# Usage: scripts/ci_kill_resume.sh  (from the repository root)
set -u -o pipefail

JOURNAL=results/ci_kill_resume.jsonl
OUT=results/ci_kill_resume
rm -rf "$JOURNAL" "$OUT"

cargo build --release -p sac-bench --bin golden_sweep || exit 1

# Two workers with a 1s stall per cell: the 8-cell sweep needs >= 4s of
# wall clock, so a kill at ~2.5s reliably lands mid-run with some cells
# already journaled and some still outstanding.
target/release/golden_sweep --journal "$JOURNAL" --out "$OUT" \
    --stall-ms 1000 --jobs 2 &
PID=$!
sleep 2.5
kill -9 "$PID" 2>/dev/null
wait "$PID" 2>/dev/null

if [[ ! -f "$JOURNAL" ]]; then
    echo "FAIL: no journal on disk after SIGKILL" >&2
    exit 1
fi
RECORDED=$(wc -l < "$JOURNAL")
echo "journal holds $RECORDED record(s) at kill time"
if (( RECORDED >= 8 )); then
    echo "WARN: sweep finished before the kill; resume path still exercised" >&2
fi

# Resume: replay the journaled cells, run the rest.
target/release/golden_sweep --resume "$JOURNAL" --out "$OUT" --jobs 2 || {
    echo "FAIL: resumed sweep did not complete" >&2
    exit 1
}

# The resumed output must match the committed snapshots byte for byte.
FAIL=0
for f in tests/golden/*.json; do
    name=$(basename "$f")
    if ! cmp -s "$f" "$OUT/$name"; then
        echo "FAIL: $name differs from the golden snapshot after resume" >&2
        FAIL=1
    fi
done
if (( FAIL )); then
    exit 1
fi
echo "PASS: resumed sweep reproduced all $(ls tests/golden/*.json | wc -l) golden snapshots byte-identically"
