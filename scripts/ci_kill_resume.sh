#!/usr/bin/env bash
# CI kill/resume drill, two phases:
#
#   1  journal granularity: start a journaled sweep over the golden suite,
#      SIGKILL it mid-run, resume from the journal, and require the final
#      stats to be byte-identical to the committed golden snapshots.
#   2  checkpoint granularity: the deterministic crash drill interrupts
#      every cell mid-cycle and snapshots it — exactly the on-disk state
#      a SIGKILL between two periodic checkpoints leaves — and the resume
#      must continue each cell from its snapshot instead of from cycle 0,
#      still reproducing every golden snapshot byte for byte.
#
# Usage: scripts/ci_kill_resume.sh  (from the repository root)
set -u -o pipefail

JOURNAL=results/ci_kill_resume.jsonl
OUT=results/ci_kill_resume
rm -rf "$JOURNAL" "$OUT"

cargo build --release -p sac-bench --bin golden_sweep || exit 1

# Two workers with a 1s stall per cell: the 8-cell sweep needs >= 4s of
# wall clock, so a kill at ~2.5s reliably lands mid-run with some cells
# already journaled and some still outstanding.
target/release/golden_sweep --journal "$JOURNAL" --out "$OUT" \
    --stall-ms 1000 --jobs 2 &
PID=$!
sleep 2.5
kill -9 "$PID" 2>/dev/null
wait "$PID" 2>/dev/null

if [[ ! -f "$JOURNAL" ]]; then
    echo "FAIL: no journal on disk after SIGKILL" >&2
    exit 1
fi
RECORDED=$(wc -l < "$JOURNAL")
echo "journal holds $RECORDED record(s) at kill time"
if (( RECORDED >= 8 )); then
    echo "WARN: sweep finished before the kill; resume path still exercised" >&2
fi

# Resume: replay the journaled cells, run the rest.
target/release/golden_sweep --resume "$JOURNAL" --out "$OUT" --jobs 2 || {
    echo "FAIL: resumed sweep did not complete" >&2
    exit 1
}

# The resumed output must match the committed snapshots byte for byte.
# (Compare the sweep's own output set: tests/golden/ also holds fixtures
# for other suites, e.g. figcheck_golden.json.)
FAIL=0
CELLS=0
for f in "$OUT"/*.json; do
    name=$(basename "$f")
    CELLS=$((CELLS + 1))
    if ! cmp -s "tests/golden/$name" "$f"; then
        echo "FAIL: $name differs from the golden snapshot after resume" >&2
        FAIL=1
    fi
done
if (( CELLS != 8 )); then
    echo "FAIL: resumed sweep wrote $CELLS of 8 cells" >&2
    FAIL=1
fi
if (( FAIL )); then
    exit 1
fi
echo "PASS: resumed sweep reproduced all $CELLS golden snapshots byte-identically"

# ---- Phase 2: crash between mid-cell checkpoints --------------------------
echo "== phase 2: mid-cell checkpoint resume =="
JOURNAL2=results/ci_kill_resume_ckpt.jsonl
OUT2=results/ci_kill_resume_ckpt
STATE2=results/ci_kill_resume_state
rm -rf "$JOURNAL2" "$OUT2" "$STATE2"

# The deterministic crash drill: interrupt every cell at cycle 2000
# (below the shortest golden case's total) and snapshot it, leaving
# exactly what a SIGKILL between two periodic checkpoints leaves behind.
target/release/golden_sweep --journal "$JOURNAL2" --out "$OUT2" \
    --state-dir "$STATE2" --ckpt-cut 2000
RC=$?
if (( RC != 3 )); then
    echo "FAIL: crash drill exited $RC, want 3" >&2
    exit 1
fi
SNAPS=$(ls "$STATE2"/*.ckpt 2>/dev/null | wc -l)
echo "state dir holds $SNAPS mid-cell snapshot(s) after the simulated crash"
if (( SNAPS != 8 )); then
    echo "FAIL: expected 8 mid-cell snapshots, found $SNAPS" >&2
    exit 1
fi

RESUME_LOG=results/ci_kill_resume_ckpt.log
target/release/golden_sweep --resume "$JOURNAL2" --out "$OUT2" \
    --state-dir "$STATE2" --jobs 2 \
    2> >(tee "$RESUME_LOG" >&2) || {
    echo "FAIL: checkpointed resume did not complete" >&2
    exit 1
}
RESUMED=$(grep -c "resumed .* from checkpoint at cycle" "$RESUME_LOG")
if (( RESUMED != 8 )); then
    echo "FAIL: $RESUMED of 8 cells resumed from their snapshots" >&2
    exit 1
fi

FAIL=0
CELLS=0
for f in "$OUT2"/*.json; do
    name=$(basename "$f")
    CELLS=$((CELLS + 1))
    if ! cmp -s "tests/golden/$name" "$f"; then
        echo "FAIL: $name differs from the golden snapshot after mid-cell resume" >&2
        FAIL=1
    fi
done
if (( CELLS != 8 )); then
    echo "FAIL: resumed sweep wrote $CELLS of 8 cells" >&2
    FAIL=1
fi
if (( FAIL )); then
    exit 1
fi
LEFT=$(ls "$STATE2"/*.ckpt 2>/dev/null | wc -l)
if (( LEFT != 0 )); then
    echo "FAIL: $LEFT stale snapshot(s) left after a fully completed sweep" >&2
    exit 1
fi
echo "PASS: mid-cell checkpoint resume reproduced all golden snapshots byte-identically"
