#!/usr/bin/env bash
# Chaos drill for the sac_serve sweep daemon. Three phases:
#
#   A  baseline: a clean daemon serves a fixed loadgen campaign; every
#      request terminates and its cell stats land on disk.
#   B  crash/restart: the same campaign against a slowed daemon that is
#      SIGKILLed mid-flight and restarted on a fresh OS-assigned port.
#      The campaign must still finish (clients re-find the server via the
#      serve.addr file), the results must be byte-identical to phase A,
#      and the journal must not contain a duplicate completion for any
#      (cell, config_hash) pair — i.e. no work was lost *or* redone.
#   C  backpressure: a daemon with a one-slot queue under an overload
#      flood must refuse with 429 at least once.
#
# Usage: scripts/ci_serve_chaos.sh  (from the repository root)
set -u -o pipefail

ROOT=results/ci_serve_chaos
rm -rf "$ROOT"
mkdir -p "$ROOT"

cargo build --release -p sac-bench --bin sac_serve --bin loadgen || exit 1

SERVE=target/release/sac_serve
LOADGEN=target/release/loadgen
# Small deterministic campaign: heavy spec overlap exercises dedupe.
CAMPAIGN=(--requests 12 --concurrency 4 --benchmarks SN,CFD --orgs sac,mem \
          --total-accesses 4000 --deadline-s 240)
SERVER_PID=

cleanup() {
    [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2>/dev/null
    wait 2>/dev/null
}
trap cleanup EXIT

start_server() { # state_dir extra-args...
    local state=$1
    shift
    "$SERVE" --state "$state" --addr 127.0.0.1:0 "$@" &
    SERVER_PID=$!
    # The daemon writes its bound address to STATE/serve.addr once live.
    for _ in $(seq 1 100); do
        [[ -s "$state/serve.addr" ]] && return 0
        kill -0 "$SERVER_PID" 2>/dev/null || { echo "FAIL: daemon died on startup" >&2; return 1; }
        sleep 0.1
    done
    echo "FAIL: daemon never published its address" >&2
    return 1
}

stop_server() {
    kill -9 "$SERVER_PID" 2>/dev/null
    wait "$SERVER_PID" 2>/dev/null
    SERVER_PID=
}

# ---- Phase A: baseline ----------------------------------------------------
echo "== phase A: baseline campaign =="
start_server "$ROOT/stateA" || exit 1
"$LOADGEN" --addr-file "$ROOT/stateA/serve.addr" --out "$ROOT/outA" \
    "${CAMPAIGN[@]}" || { echo "FAIL: baseline campaign" >&2; exit 1; }
stop_server

# ---- Phase B: SIGKILL mid-campaign, restart on a new port -----------------
echo "== phase B: kill/restart chaos =="
rm -f "$ROOT/stateB/serve.addr"
# Two workers with a 2s stall per fresh cell: the campaign's 4 unique
# cells need >= 4s of wall clock, so a kill at ~2.5s reliably lands with
# some cells journaled and some still outstanding.
start_server "$ROOT/stateB" --stall-ms 2000 --jobs 2 || exit 1
"$LOADGEN" --addr-file "$ROOT/stateB/serve.addr" --out "$ROOT/outB" \
    "${CAMPAIGN[@]}" &
LOAD_PID=$!
sleep 2.5
if ! kill -0 "$LOAD_PID" 2>/dev/null; then
    echo "WARN: campaign finished before the kill; restart path still exercised" >&2
fi
echo "killing daemon under load (pid $SERVER_PID)"
stop_server
# Remove the stale address so clients cannot race onto the dead port.
rm -f "$ROOT/stateB/serve.addr"
sleep 1
# Restart WITHOUT the stall: the recovered work should finish briskly.
start_server "$ROOT/stateB" || exit 1
wait "$LOAD_PID" || { echo "FAIL: chaos campaign did not recover" >&2; exit 1; }
stop_server

if ! diff -r "$ROOT/outA" "$ROOT/outB"; then
    echo "FAIL: results after kill/restart differ from the baseline" >&2
    exit 1
fi
echo "PASS: chaos campaign byte-identical to baseline"

JOURNAL="$ROOT/stateB/journal.jsonl"
if [[ ! -f "$JOURNAL" ]]; then
    echo "FAIL: no journal in the chaos state directory" >&2
    exit 1
fi
DUPES=$(grep '"outcome": "completed"' "$JOURNAL" \
    | sed 's/.*"cell": "\([^"]*\)", "config_hash": "\([^"]*\)".*/\1 \2/' \
    | sort | uniq -d)
if [[ -n "$DUPES" ]]; then
    echo "FAIL: duplicate completions in the journal (work was redone):" >&2
    echo "$DUPES" >&2
    exit 1
fi
echo "PASS: $(wc -l < "$JOURNAL") journal record(s), no duplicate completions"

# ---- Phase C: backpressure under overload ---------------------------------
echo "== phase C: backpressure =="
start_server "$ROOT/stateC" --max-queue 1 --stall-ms 500 || exit 1
SUMMARY=$("$LOADGEN" --addr-file "$ROOT/stateC/serve.addr" --mode overload \
    --requests 16 --concurrency 8 --deadline-s 60)
echo "$SUMMARY"
stop_server
if ! grep -Eq 'backpressure responses: [1-9]' <<<"$SUMMARY"; then
    echo "FAIL: overload flood was never refused with 429" >&2
    exit 1
fi
echo "PASS: overload flood saw 429 backpressure"

echo "PASS: sweep service chaos drill complete"
