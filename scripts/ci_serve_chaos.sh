#!/usr/bin/env bash
# Chaos drill for the sac_serve sweep daemon. Four phases:
#
#   A  baseline: a clean daemon serves a fixed loadgen campaign; every
#      request terminates and its cell stats land on disk.
#   B  crash/restart: the same campaign against a slowed daemon that is
#      SIGKILLed mid-flight and restarted on a fresh OS-assigned port.
#      The campaign must still finish (clients re-find the server via the
#      serve.addr file), the results must be byte-identical to phase A,
#      and the journal must not contain a duplicate completion for any
#      (cell, config_hash) pair — i.e. no work was lost *or* redone.
#   C  backpressure: a daemon with a one-slot queue under an overload
#      flood must refuse with 429 at least once.
#   D  mid-cell re-adoption: phase B with `--checkpoint-interval` on and
#      heavier cells, aiming the SIGKILL *between two checkpoints of an
#      in-flight cell*. The restarted daemon re-adopts that cell mid-cycle
#      from its snapshot and the delivered stats must still be
#      byte-identical to a clean run of the same campaign.
#
# Usage: scripts/ci_serve_chaos.sh  (from the repository root)
set -u -o pipefail

ROOT=results/ci_serve_chaos
rm -rf "$ROOT"
mkdir -p "$ROOT"

cargo build --release -p sac-bench --bin sac_serve --bin loadgen || exit 1

SERVE=target/release/sac_serve
LOADGEN=target/release/loadgen
# Small deterministic campaign: heavy spec overlap exercises dedupe.
CAMPAIGN=(--requests 12 --concurrency 4 --benchmarks SN,CFD --orgs sac,mem \
          --total-accesses 4000 --deadline-s 240)
SERVER_PID=

cleanup() {
    [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2>/dev/null
    wait 2>/dev/null
}
trap cleanup EXIT

start_server() { # state_dir extra-args...
    local state=$1
    shift
    mkdir -p "$state"
    # The daemon's log survives restarts (appended) so later phases can
    # check for checkpoint re-adoption evidence.
    "$SERVE" --state "$state" --addr 127.0.0.1:0 "$@" >>"$state/server.log" 2>&1 &
    SERVER_PID=$!
    # The daemon writes its bound address to STATE/serve.addr once live.
    for _ in $(seq 1 100); do
        [[ -s "$state/serve.addr" ]] && return 0
        kill -0 "$SERVER_PID" 2>/dev/null || { echo "FAIL: daemon died on startup" >&2; return 1; }
        sleep 0.1
    done
    echo "FAIL: daemon never published its address" >&2
    return 1
}

stop_server() {
    kill -9 "$SERVER_PID" 2>/dev/null
    wait "$SERVER_PID" 2>/dev/null
    SERVER_PID=
}

# ---- Phase A: baseline ----------------------------------------------------
echo "== phase A: baseline campaign =="
start_server "$ROOT/stateA" || exit 1
"$LOADGEN" --addr-file "$ROOT/stateA/serve.addr" --out "$ROOT/outA" \
    "${CAMPAIGN[@]}" || { echo "FAIL: baseline campaign" >&2; exit 1; }
stop_server

# ---- Phase B: SIGKILL mid-campaign, restart on a new port -----------------
echo "== phase B: kill/restart chaos =="
rm -f "$ROOT/stateB/serve.addr"
# Two workers with a 2s stall per fresh cell: the campaign's 4 unique
# cells need >= 4s of wall clock, so a kill at ~2.5s reliably lands with
# some cells journaled and some still outstanding.
start_server "$ROOT/stateB" --stall-ms 2000 --jobs 2 || exit 1
"$LOADGEN" --addr-file "$ROOT/stateB/serve.addr" --out "$ROOT/outB" \
    "${CAMPAIGN[@]}" &
LOAD_PID=$!
sleep 2.5
if ! kill -0 "$LOAD_PID" 2>/dev/null; then
    echo "WARN: campaign finished before the kill; restart path still exercised" >&2
fi
echo "killing daemon under load (pid $SERVER_PID)"
stop_server
# Remove the stale address so clients cannot race onto the dead port.
rm -f "$ROOT/stateB/serve.addr"
sleep 1
# Restart WITHOUT the stall: the recovered work should finish briskly.
start_server "$ROOT/stateB" || exit 1
wait "$LOAD_PID" || { echo "FAIL: chaos campaign did not recover" >&2; exit 1; }
stop_server

if ! diff -r "$ROOT/outA" "$ROOT/outB"; then
    echo "FAIL: results after kill/restart differ from the baseline" >&2
    exit 1
fi
echo "PASS: chaos campaign byte-identical to baseline"

JOURNAL="$ROOT/stateB/journal.jsonl"
if [[ ! -f "$JOURNAL" ]]; then
    echo "FAIL: no journal in the chaos state directory" >&2
    exit 1
fi
DUPES=$(grep '"outcome": "completed"' "$JOURNAL" \
    | sed 's/.*"cell": "\([^"]*\)", "config_hash": "\([^"]*\)".*/\1 \2/' \
    | sort | uniq -d)
if [[ -n "$DUPES" ]]; then
    echo "FAIL: duplicate completions in the journal (work was redone):" >&2
    echo "$DUPES" >&2
    exit 1
fi
echo "PASS: $(wc -l < "$JOURNAL") journal record(s), no duplicate completions"

# ---- Phase C: backpressure under overload ---------------------------------
echo "== phase C: backpressure =="
start_server "$ROOT/stateC" --max-queue 1 --stall-ms 500 || exit 1
SUMMARY=$("$LOADGEN" --addr-file "$ROOT/stateC/serve.addr" --mode overload \
    --requests 16 --concurrency 8 --deadline-s 60)
echo "$SUMMARY"
stop_server
if ! grep -Eq 'backpressure responses: [1-9]' <<<"$SUMMARY"; then
    echo "FAIL: overload flood was never refused with 429" >&2
    exit 1
fi
echo "PASS: overload flood saw 429 backpressure"

# ---- Phase D: SIGKILL between mid-cell checkpoints ------------------------
echo "== phase D: mid-cell checkpoint re-adoption =="
# Heavier cells (long enough to cross the engine's 65536-cycle
# checkpoint grid several times): the kill usually lands inside an
# in-flight cell, between two of its snapshots. Whether it does is a
# race, so retry a few times; if every try lands in a gap, restart
# recovery is still exercised (warn, don't fail).
HEAVY=(--requests 8 --concurrency 4 --benchmarks SN,CFD --orgs sac,mem \
       --total-accesses 400000 --deadline-s 240)

echo "building the clean reference for the heavy campaign"
start_server "$ROOT/stateD0" --checkpoint-interval 4096 || exit 1
"$LOADGEN" --addr-file "$ROOT/stateD0/serve.addr" --out "$ROOT/outD0" \
    "${HEAVY[@]}" || { echo "FAIL: heavy reference campaign" >&2; exit 1; }
stop_server

SNAPS=0
LOAD_PID=
for try in 1 2 3; do
    if [[ -n "$LOAD_PID" ]]; then
        # Tear down the previous try's campaign before restarting it.
        kill "$LOAD_PID" 2>/dev/null
        wait "$LOAD_PID" 2>/dev/null
    fi
    rm -rf "$ROOT/stateD" "$ROOT/outD"
    start_server "$ROOT/stateD" --checkpoint-interval 4096 --jobs 2 || exit 1
    "$LOADGEN" --addr-file "$ROOT/stateD/serve.addr" --out "$ROOT/outD" \
        "${HEAVY[@]}" &
    LOAD_PID=$!
    sleep 3
    echo "killing checkpointing daemon under load (pid $SERVER_PID)"
    stop_server
    rm -f "$ROOT/stateD/serve.addr"
    SNAPS=$(ls "$ROOT/stateD/ckpt"/*.ckpt 2>/dev/null | wc -l)
    (( SNAPS > 0 )) && break
    echo "try $try: kill landed between cells (no snapshot); retrying" >&2
done
echo "state dir holds $SNAPS mid-cell snapshot(s) at kill time"
if (( SNAPS == 0 )); then
    echo "WARN: no mid-cell snapshot survived the kill; restart recovery still exercised" >&2
fi
sleep 1
start_server "$ROOT/stateD" --checkpoint-interval 4096 || exit 1
wait "$LOAD_PID" || { echo "FAIL: checkpointed campaign did not recover" >&2; exit 1; }
stop_server

if ! diff -r "$ROOT/outD0" "$ROOT/outD"; then
    echo "FAIL: results after mid-cell re-adoption differ from the clean run" >&2
    exit 1
fi
if (( SNAPS > 0 )) && ! grep -q "resumed .* at cycle" "$ROOT/stateD/server.log"; then
    echo "FAIL: a snapshot was on disk but the restarted daemon never resumed from it" >&2
    exit 1
fi
LEFT=$(ls "$ROOT/stateD/ckpt"/*.ckpt 2>/dev/null | wc -l)
if (( LEFT != 0 )); then
    echo "FAIL: $LEFT stale snapshot(s) left after the campaign completed" >&2
    exit 1
fi
echo "PASS: mid-cell re-adoption byte-identical to the clean heavy campaign"

echo "PASS: sweep service chaos drill complete"
