//! Property test pinning the `CellError` taxonomy across the journal
//! boundary: every variant's machine-readable `kind()` string must
//! serialize into a quarantined journal record, reload from disk
//! unchanged, and re-classify (`CellError::kind_retryable`) to exactly
//! the retry decision the in-memory error (`CellError::retryable`) would
//! make. This is what lets a restarted `sac_serve` daemon re-adopt
//! quarantined cells from the journal without ever flipping a retry
//! decision: a budget trip stays retryable, a bug stays permanent.

use mcgpu_sim::{ConservationReport, DeadlockSnapshot, SimError};
use proptest::prelude::*;
use sac_bench::sweep::CellError;
use sac_bench::{Journal, JournalRecord, RecordOutcome};
use std::path::PathBuf;

/// Every taxonomy variant, with arbitrary payloads where they exist.
fn cell_error_strategy() -> impl Strategy<Value = CellError> {
    prop_oneof![
        any::<u64>().prop_map(|n| CellError::Panic {
            // Exercise the escaping path: quotes, newlines, backslashes.
            message: format!("boom #{n}: \"quoted\"\n\\tail"),
        }),
        any::<u64>().prop_map(|limit| CellError::Sim(SimError::CycleLimit { limit })),
        (any::<u64>(), any::<u64>()).prop_map(|(cycle, window)| {
            CellError::Sim(SimError::Deadlock {
                cycle,
                window,
                snapshot: Box::<DeadlockSnapshot>::default(),
            })
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(elapsed_ms, budget_ms)| {
            CellError::Sim(SimError::Timeout {
                elapsed_ms,
                budget_ms,
            })
        }),
        any::<u64>().prop_map(|cycle| CellError::Sim(SimError::Cancelled { cycle })),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(cycle, in_flight, accounted)| {
            CellError::Sim(SimError::InvariantViolation {
                cycle,
                report: Box::new(ConservationReport {
                    in_flight,
                    accounted,
                    ..ConservationReport::default()
                }),
            })
        }),
        any::<u64>().prop_map(|n| {
            CellError::Sim(SimError::Config(mcgpu_types::ConfigError::new(format!(
                "rejected input {n}"
            ))))
        }),
    ]
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sac-cell-error-roundtrip-{tag}-{}.jsonl",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// kind → journal → disk → reload → kind_retryable is the identity on
    /// the retry decision, and the kind string itself survives verbatim.
    #[test]
    fn taxonomy_round_trips_through_the_journal(
        err in cell_error_strategy(),
        attempts in 1u32..=5,
        case in 0u64..1_000_000,
    ) {
        let kind = err.kind();
        let message = err.to_string();

        let path = tmp_path(&format!("{case}"));
        let mut j = Journal::create(&path).unwrap();
        j.append(JournalRecord {
            cell: "PROP/cell".to_string(),
            config_hash: case,
            config: Some(format!("prop-desc-{case}")),
            mode: None,
            attempts,
            outcome: RecordOutcome::Quarantined {
                kind: kind.to_string(),
                error: message.clone(),
            },
        })
        .unwrap();

        let back = Journal::open(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let rec = back
            .lookup_verified("PROP/cell", case, &format!("prop-desc-{case}"))
            .expect("record survives reload");
        prop_assert_eq!(rec.attempts, attempts);
        let RecordOutcome::Quarantined { kind: k2, error: e2 } = &rec.outcome else {
            panic!("outcome class changed across the journal");
        };
        // The wire strings survive byte-for-byte...
        prop_assert_eq!(k2.as_str(), kind);
        prop_assert_eq!(e2.as_str(), message.as_str());
        // ...and the reloaded kind re-classifies to the same retry
        // decision the original error object carried. `None` would mean
        // the taxonomy leaked an unclassifiable kind to disk.
        prop_assert_eq!(CellError::kind_retryable(k2), Some(err.retryable()));
    }
}

/// The taxonomy is closed: the set of kinds `CellError::kind` can emit and
/// the set `kind_retryable` classifies are the same seven strings.
#[test]
fn every_emitted_kind_is_classified_and_vice_versa() {
    let emitted = [
        "panic",
        "cycle-limit",
        "deadlock",
        "timeout",
        "cancelled",
        "invariant-violation",
        "config",
    ];
    for kind in emitted {
        assert!(
            CellError::kind_retryable(kind).is_some(),
            "emitted kind `{kind}` is unclassifiable"
        );
    }
    for bogus in ["", "Cancelled", "cycle_limit", "oom", "unknown"] {
        assert_eq!(CellError::kind_retryable(bogus), None, "{bogus}");
    }
}
