//! Crash-safe sweep integration tests.
//!
//! Covers the ISSUE-3 durability contract end to end with the same
//! machinery the figure harnesses use: per-cell isolation (a panicking or
//! deadlocked cell never poisons siblings), deterministic bounded retries
//! with quarantine, and the resumable JSONL run journal — including that a
//! `--resume` from a truncated journal reproduces byte-identical canonical
//! stats while re-executing only the missing or quarantined cells.

use mcgpu_sim::{DeadlockSnapshot, SimError};
use mcgpu_trace::{profiles, TraceParams};
use mcgpu_types::LlcOrgKind;
use proptest::prelude::*;
use sac_bench::sweep::{self, CellError, MAX_ATTEMPTS};
use sac_bench::{
    cell_config_hash, run_profiles, Journal, JournalRecord, RecordOutcome, SweepOptions,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sac-crash-safe-{name}-{}.jsonl",
        std::process::id()
    ))
}

fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = f();
    std::panic::set_hook(hook);
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property: whatever subset of cells is injected to fail — by panic
    /// or by a typed deadlock — every healthy sibling completes with its
    /// correct result, and every injected cell is quarantined with the
    /// matching typed error.
    #[test]
    fn injected_failures_never_poison_siblings(
        faults in proptest::collection::vec(0u8..3, 1..24),
    ) {
        let cells: Vec<(usize, u8)> = faults.iter().copied().enumerate().collect();
        let outcomes = quiet_panics(|| {
            sweep::map_isolated(cells, |&(i, fault), _attempt| match fault {
                0 => Ok(i * 10),
                1 => panic!("injected panic in cell {i}"),
                _ => Err(CellError::Sim(SimError::Deadlock {
                    cycle: 1_000,
                    window: 100,
                    snapshot: Box::new(DeadlockSnapshot::default()),
                })),
            })
        });
        prop_assert_eq!(outcomes.len(), faults.len());
        for (i, (fault, out)) in faults.iter().zip(&outcomes).enumerate() {
            match fault {
                0 => {
                    prop_assert_eq!(out.result.as_ref().ok(), Some(&(i * 10)));
                    prop_assert_eq!(out.attempts, 1);
                }
                1 => {
                    // Panics are bugs: quarantined on the first attempt.
                    prop_assert_eq!(out.attempts, 1);
                    prop_assert!(matches!(&out.result, Err(CellError::Panic { message })
                        if *message == format!("injected panic in cell {i}")));
                }
                _ => {
                    // Deadlocks are budget trips: retried with escalating
                    // budgets, then quarantined.
                    prop_assert_eq!(out.attempts, MAX_ATTEMPTS);
                    prop_assert!(matches!(
                        &out.result,
                        Err(CellError::Sim(SimError::Deadlock { .. }))
                    ));
                }
            }
        }
    }
}

/// A journaled sweep with an injected panicking cell: siblings complete,
/// the failure lands in the journal as a typed record, and a resume
/// re-executes only the failed cell.
#[test]
fn resume_reruns_only_the_failed_cell() {
    let path = tmp_path("rerun-failed");
    let cells: Vec<&str> = vec!["a", "b", "c", "d"];
    let executions = AtomicUsize::new(0);
    let run_pass = |journal_path: &PathBuf, create: bool, panic_on: Option<&str>| {
        let mut journal = if create {
            Journal::create(journal_path).unwrap()
        } else {
            Journal::open(journal_path).unwrap()
        };
        // Same replay-or-run-then-record sequence `run_profiles` uses,
        // serial so the journal handle needs no lock.
        for cell in &cells {
            let hash = sac_bench::journal::fnv1a_64(cell.as_bytes());
            if let Some(r) = journal.lookup(cell, hash) {
                if matches!(r.outcome, RecordOutcome::Completed { .. }) {
                    continue;
                }
            }
            executions.fetch_add(1, Ordering::Relaxed);
            let out = quiet_panics(|| {
                sweep::run_cell(|_| {
                    if Some(*cell) == panic_on {
                        panic!("injected panic in {cell}");
                    }
                    Ok(format!("stats for {cell}"))
                })
            });
            let outcome = match &out.result {
                Ok(s) => RecordOutcome::Completed {
                    stats_json: s.clone(),
                },
                Err(e) => RecordOutcome::Quarantined {
                    kind: e.kind().to_string(),
                    error: e.to_string(),
                },
            };
            journal
                .append(JournalRecord {
                    cell: cell.to_string(),
                    config_hash: hash,
                    config: Some(cell.to_string()),
                    mode: None,
                    attempts: out.attempts,
                    outcome,
                })
                .unwrap();
        }
    };

    // First pass: cell "c" panics; the other three complete and are
    // journaled alongside the typed failure record.
    run_pass(&path, true, Some("c"));
    assert_eq!(executions.load(Ordering::Relaxed), 4);
    let j = Journal::open(&path).unwrap();
    assert_eq!(j.records().len(), 4, "every cell outcome is journaled");
    let failed = j
        .lookup("c", sac_bench::journal::fnv1a_64(b"c"))
        .expect("failure recorded");
    assert_eq!(
        failed.outcome,
        RecordOutcome::Quarantined {
            kind: "panic".to_string(),
            error: "cell panicked: injected panic in c".to_string(),
        }
    );

    // Resume: only the quarantined cell re-executes, and its new completed
    // record supersedes the quarantine.
    executions.store(0, Ordering::Relaxed);
    run_pass(&path, false, None);
    assert_eq!(
        executions.load(Ordering::Relaxed),
        1,
        "resume re-executes only the failed cell"
    );
    let j = Journal::open(&path).unwrap();
    assert_eq!(
        j.lookup("c", sac_bench::journal::fnv1a_64(b"c"))
            .unwrap()
            .outcome,
        RecordOutcome::Completed {
            stats_json: "stats for c".to_string(),
        }
    );
    std::fs::remove_file(&path).unwrap();
}

/// Interrupt-and-resume at the `run_profiles` level: truncating the
/// journal (as a mid-run SIGKILL would) and resuming yields canonical
/// stats byte-identical to the uninterrupted run's.
#[test]
fn resume_from_truncated_journal_is_byte_identical() {
    let cfg = sac_bench::experiment_config();
    let params = TraceParams {
        total_accesses: 8_000,
        ..TraceParams::quick()
    };
    let profs = vec![profiles::by_name("SN").unwrap()];
    let orgs = [LlcOrgKind::MemorySide, LlcOrgKind::Sac];
    let path = tmp_path("truncated-resume");

    let fresh = run_profiles(
        &cfg,
        &profs,
        &params,
        &orgs,
        &SweepOptions {
            journal: Some(path.clone()),
            ..SweepOptions::none()
        },
    )
    .unwrap();
    let reference: Vec<String> = orgs
        .iter()
        .map(|&o| fresh[0].stats(o).to_canonical_json())
        .collect();

    // Simulate a kill mid-run twice over: drop the second record entirely,
    // and tear the remaining line in half.
    let text = std::fs::read_to_string(&path).unwrap();
    let first_line_len = text.lines().next().unwrap().len();
    std::fs::write(&path, &text[..first_line_len + 1 + first_line_len / 2]).unwrap();
    assert_eq!(
        Journal::open(&path).unwrap().records().len(),
        1,
        "torn tail is dropped, intact prefix survives"
    );

    let resumed = run_profiles(
        &cfg,
        &profs,
        &params,
        &orgs,
        &SweepOptions {
            resume: Some(path.clone()),
            ..SweepOptions::none()
        },
    )
    .unwrap();
    for (i, &org) in orgs.iter().enumerate() {
        assert_eq!(
            resumed[0].stats(org).to_canonical_json(),
            reference[i],
            "{}: resumed stats must be byte-identical",
            org.label()
        );
    }
    // The re-run cell was journaled again; the replayed one was not.
    assert_eq!(Journal::open(&path).unwrap().records().len(), 2);

    // A stale config hash must force a re-run rather than replaying stats
    // from a different experiment.
    let mut other = cfg.clone();
    other.watchdog_cycles += 1;
    assert_ne!(
        cell_config_hash(&cfg, &params, "SN", LlcOrgKind::Sac),
        cell_config_hash(&other, &params, "SN", LlcOrgKind::Sac)
    );
    std::fs::remove_file(&path).unwrap();
}
