//! Design-space smoke tests: every Fig. 14 configuration axis runs cleanly
//! and conserves work.

use mcgpu_sim::SimBuilder;
use mcgpu_trace::{generate, profiles, TraceParams};
use mcgpu_types::{CoherenceKind, LlcOrgKind, MachineConfig, MemoryInterface};

fn params() -> TraceParams {
    TraceParams {
        total_accesses: 30_000,
        ..TraceParams::quick()
    }
}

fn check(cfg: MachineConfig, bench: &str) {
    cfg.validate().expect("valid configuration");
    let wl = generate(&cfg, &profiles::by_name(bench).expect("profile"), &params());
    let expected = wl.total_accesses() as u64;
    for org in [LlcOrgKind::MemorySide, LlcOrgKind::SmSide, LlcOrgKind::Sac] {
        let s = SimBuilder::new(cfg.clone())
            .organization(org)
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .unwrap_or_else(|e| panic!("{bench}/{org}: {e}"));
        assert_eq!(s.reads + s.writes, expected, "{bench}/{org}");
    }
}

#[test]
fn interchip_bandwidth_sweep() {
    for factor in [0.5, 2.0, 8.0] {
        let mut cfg = MachineConfig::experiment_baseline();
        cfg.interchip_pair_gbs *= factor;
        check(cfg, "SN");
    }
}

#[test]
fn llc_capacity_sweep() {
    for factor in [0.5, 2.0] {
        let mut cfg = MachineConfig::experiment_baseline();
        cfg.llc_bytes_per_chip = (cfg.llc_bytes_per_chip as f64 * factor) as u64;
        check(cfg, "RN");
    }
}

#[test]
fn memory_interfaces() {
    for iface in [MemoryInterface::Gddr5, MemoryInterface::Hbm2] {
        let mut cfg = MachineConfig::experiment_baseline().with_memory_interface(iface);
        cfg.dram_channel_gbs /= cfg.scale.topology as f64;
        check(cfg, "SRAD");
    }
}

#[test]
fn hardware_coherence() {
    let mut cfg = MachineConfig::experiment_baseline();
    cfg.coherence = CoherenceKind::Hardware;
    check(cfg, "RN");
}

#[test]
fn two_chip_machine() {
    let mut cfg = MachineConfig::experiment_baseline();
    cfg.chips = 2;
    check(cfg, "SN");
}

#[test]
fn sectored_caches() {
    let mut cfg = MachineConfig::experiment_baseline();
    cfg.sectored = true;
    check(cfg, "CFD");
}

#[test]
fn page_sizes() {
    for ps in [2048u64, 8192] {
        let mut cfg = MachineConfig::experiment_baseline();
        cfg.page_size = ps;
        check(cfg, "BS");
    }
}

#[test]
fn interchip_bandwidth_shrinks_sac_gain() {
    // Fig. 14's headline trend: with abundant inter-chip bandwidth, caching
    // remote data locally matters less, so SM-side's (and SAC's) advantage
    // over memory-side shrinks.
    let bench = profiles::by_name("SN").expect("profile");
    let p = TraceParams {
        total_accesses: 60_000,
        ..TraceParams::quick()
    };
    let speedup_at = |factor: f64| {
        let mut cfg = MachineConfig::experiment_baseline();
        cfg.interchip_pair_gbs *= factor;
        let wl = generate(&cfg, &bench, &p);
        let mem = SimBuilder::new(cfg.clone())
            .organization(LlcOrgKind::MemorySide)
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .expect("mem");
        let sm = SimBuilder::new(cfg)
            .organization(LlcOrgKind::SmSide)
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .expect("sm");
        sm.speedup_over(&mem)
    };
    let narrow = speedup_at(1.0);
    let wide = speedup_at(8.0);
    assert!(
        wide < narrow,
        "8x inter-chip bandwidth should shrink the SM-side advantage: {narrow:.2} -> {wide:.2}"
    );
}
