//! End-to-end integration tests asserting the paper's headline qualitative
//! results on small traces.

use mcgpu_sim::{RunStats, SimBuilder};
use mcgpu_trace::{generate, profiles, TraceParams, Workload};
use mcgpu_types::{LlcOrgKind, MachineConfig};
use sac::LlcMode;

fn cfg() -> MachineConfig {
    MachineConfig::experiment_baseline()
}

fn params() -> TraceParams {
    TraceParams {
        total_accesses: 80_000,
        ..TraceParams::quick()
    }
}

fn workload(name: &str) -> Workload {
    generate(
        &cfg(),
        &profiles::by_name(name).expect("profile"),
        &params(),
    )
}

/// Larger volume for tests that depend on SAC's per-kernel timing: kernels
/// must be long enough to fit the profiling window.
fn workload_long(name: &str) -> Workload {
    let p = TraceParams {
        total_accesses: 240_000,
        ..TraceParams::quick()
    };
    generate(&cfg(), &profiles::by_name(name).expect("profile"), &p)
}

fn run(wl: &Workload, org: LlcOrgKind) -> RunStats {
    SimBuilder::new(cfg())
        .organization(org)
        .build()
        .expect("valid machine configuration")
        .run(wl)
        .expect("simulation")
}

#[test]
fn sp_benchmark_prefers_sm_side() {
    // SN is the strongest SM-side-preferred benchmark (false-sharing heavy).
    let wl = workload("SN");
    let mem = run(&wl, LlcOrgKind::MemorySide);
    let sm = run(&wl, LlcOrgKind::SmSide);
    assert!(
        sm.speedup_over(&mem) > 1.5,
        "SN: SM-side should clearly beat memory-side, got {:.2}x",
        sm.speedup_over(&mem)
    );
    // And the SM-side LLC holds a large remote-data fraction (Fig. 9).
    assert!(sm.llc_local_fraction < 0.85);
    assert!(mem.llc_local_fraction > 0.999);
}

#[test]
fn mp_benchmark_prefers_memory_side() {
    // SRAD: large truly-shared working set; replication thrashes.
    let wl = workload("SRAD");
    let mem = run(&wl, LlcOrgKind::MemorySide);
    let sm = run(&wl, LlcOrgKind::SmSide);
    assert!(
        sm.speedup_over(&mem) < 1.0,
        "SRAD: memory-side should win, SM-side got {:.2}x",
        sm.speedup_over(&mem)
    );
    // The SM-side organization uniformly has the higher miss rate (Fig. 1b).
    assert!(sm.llc_miss_rate() > mem.llc_miss_rate());
}

#[test]
fn sac_decisions_track_preference() {
    for (bench, expected) in [("SN", LlcMode::SmSide), ("SRAD", LlcMode::MemorySide)] {
        let wl = workload_long(bench);
        let sac = run(&wl, LlcOrgKind::Sac);
        assert!(
            !sac.sac_history.is_empty(),
            "{bench}: no decisions recorded"
        );
        for r in &sac.sac_history {
            assert_eq!(r.mode, expected, "{bench}: wrong decision {:?}", r);
        }
    }
}

#[test]
fn sac_achieves_near_best_of_both() {
    // For an SM-side-preferred benchmark SAC must clearly beat the
    // memory-side baseline (reconfiguration overhead keeps it a bit below
    // the pure SM-side organization).
    let wl = workload_long("SN");
    let mem = run(&wl, LlcOrgKind::MemorySide);
    let sac = run(&wl, LlcOrgKind::Sac);
    assert!(
        sac.speedup_over(&mem) > 1.3,
        "SAC on SN should approach SM-side, got {:.2}x",
        sac.speedup_over(&mem)
    );

    // For a memory-side-preferred benchmark SAC must stay at the baseline
    // (no reconfiguration, negligible profiling overhead).
    let wl = workload_long("SRAD");
    let mem = run(&wl, LlcOrgKind::MemorySide);
    let sac = run(&wl, LlcOrgKind::Sac);
    let ratio = sac.speedup_over(&mem);
    assert!(
        ratio > 0.95,
        "SAC on SRAD should match memory-side, got {ratio:.2}x"
    );
}

#[test]
fn bfs_alternates_per_kernel() {
    // Fig. 12: K1 is memory-side preferred, K2 SM-side preferred, 2 rounds.
    let wl = workload_long("BFS");
    let sac = run(&wl, LlcOrgKind::Sac);
    let modes: Vec<LlcMode> = sac.sac_history.iter().map(|r| r.mode).collect();
    assert_eq!(modes.len(), 4);
    assert_eq!(
        modes,
        vec![
            LlcMode::MemorySide,
            LlcMode::SmSide,
            LlcMode::MemorySide,
            LlcMode::SmSide
        ],
        "BFS decisions should alternate M,S,M,S"
    );
}

#[test]
fn all_organizations_conserve_work() {
    let wl = workload("CFD");
    let expected = wl.total_accesses() as u64;
    for org in LlcOrgKind::ALL {
        let s = run(&wl, org);
        assert_eq!(
            s.reads + s.writes,
            expected,
            "{org}: every access completes exactly once"
        );
        assert!(s.cycles > 0);
        // Read responses delivered can never exceed reads issued.
        let delivered: u64 = s.responses_by_origin.iter().sum();
        assert!(delivered <= s.reads);
    }
}

#[test]
fn static_and_dynamic_sit_between_extremes_on_average() {
    // Across a small mixed set, the partitioned organizations track the
    // better extreme but cannot beat SAC's per-kernel choice on both groups
    // at once (the paper's Fig. 8 argument).
    let mut sac_wins_sp = 0;
    for bench in ["SN", "SRAD"] {
        let wl = workload(bench);
        let mem = run(&wl, LlcOrgKind::MemorySide);
        let stat = run(&wl, LlcOrgKind::StaticHalf);
        let dynamic = run(&wl, LlcOrgKind::Dynamic);
        let sac = run(&wl, LlcOrgKind::Sac);
        // All organizations complete; partitioned ones are never
        // catastrophically bad (> 0.5x of baseline).
        for s in [&stat, &dynamic, &sac] {
            assert!(s.speedup_over(&mem) > 0.5, "{bench}");
        }
        if sac.cycles <= dynamic.cycles {
            sac_wins_sp += 1;
        }
    }
    // SAC beats dynamic partitioning on at least the memory-side-preferred
    // benchmark (dynamic wastes capacity on remote data there).
    assert!(sac_wins_sp >= 1);
}
