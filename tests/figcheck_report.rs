//! Figcheck report regression + determinism harness.
//!
//! Three claims are pinned here, all at the byte level of the canonical
//! `mcgpu-figcheck-v1` report:
//!
//! 1. **Run-to-run determinism** — two independent suite sweeps produce
//!    identical reports, and a journaled sweep replayed with `resume`
//!    (the path the CI kill/resume job exercises with a real SIGKILL in
//!    `scripts/ci_figcheck.sh`) reproduces the same bytes without
//!    re-simulating a single cell.
//! 2. **Thread-count independence** — the golden metric table built on a
//!    1-thread pool equals the one built on a 4-thread pool, so the
//!    verdicts cannot depend on sweep scheduling.
//! 3. **Golden snapshot** — the report of the 8-case golden suite scored
//!    against `expectations/golden_smoke.json` matches the committed
//!    snapshot `tests/golden/figcheck_golden.json` byte-for-byte.
//!
//! To regenerate the snapshot after an *intended* model or expectation
//! change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test figcheck_report
//! ```

use mcgpu_trace::{profiles, TraceParams};
use mcgpu_types::{ExpectationSet, LlcOrgKind};
use sac_bench::{figcheck, run_profiles, SweepOptions};
use std::path::PathBuf;

fn manifest_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// A small two-benchmark (one SP, one MP) expectation set whose observed
/// values cover speedups, harmonic means, local fractions, bandwidth and
/// working sets — enough surface that a nondeterministic measurement
/// would change the report bytes.
const SUITE_SET: &str = r#"{
  "schema": "mcgpu-expect-v1",
  "source": "determinism fixture",
  "expectations": [
    {
      "id": "fix/SN/sm-beats-mem",
      "figure": "fig08",
      "severity": "shape",
      "check": {
        "kind": "ordering",
        "left": {"metric": "speedup", "bench": "SN", "org": "SM-side"},
        "right": {"metric": "speedup", "bench": "SN", "org": "memory-side"},
        "min_ratio": 1.0
      },
      "note": ""
    },
    {
      "id": "fix/hmean/sp-sm",
      "figure": "fig08",
      "severity": "magnitude",
      "check": {
        "kind": "band",
        "value": {"metric": "hmean_speedup", "group": "SP", "org": "SM-side"},
        "lo": 0.0,
        "hi": 100.0
      },
      "note": ""
    },
    {
      "id": "fix/SRAD/local-fraction",
      "figure": "fig09",
      "severity": "magnitude",
      "check": {
        "kind": "band",
        "value": {"metric": "local_fraction", "bench": "SRAD", "org": "SAC"},
        "lo": 0.0,
        "hi": 1.0
      },
      "note": ""
    },
    {
      "id": "fix/SN/bw-total",
      "figure": "fig10",
      "severity": "magnitude",
      "check": {
        "kind": "band",
        "value": {"metric": "bw_total", "bench": "SN", "org": "SM-side"},
        "lo": 0.0,
        "hi": 100.0
      },
      "note": ""
    },
    {
      "id": "fix/SN/working-set",
      "figure": "fig11",
      "severity": "magnitude",
      "check": {
        "kind": "band",
        "value": {"metric": "working_set_mb", "bench": "SN", "window": 1000},
        "lo": 0.0,
        "hi": 1000.0
      },
      "note": ""
    },
    {
      "id": "fix/SN/false-shared",
      "figure": "table04",
      "severity": "magnitude",
      "check": {
        "kind": "band",
        "value": {"metric": "measured_mb", "bench": "SN", "field": "false_shared_mb"},
        "lo": 0.0,
        "hi": 1000.0
      },
      "note": ""
    }
  ]
}"#;

fn suite_report(opts: &SweepOptions) -> String {
    let cfg = sac_bench::experiment_config();
    let params = TraceParams {
        total_accesses: 15_000,
        ..TraceParams::quick()
    };
    let profs = ["SN", "SRAD"].map(|n| profiles::by_name(n).expect("known benchmark"));
    let rows =
        run_profiles(&cfg, &profs, &params, &LlcOrgKind::ALL, opts).expect("sweep completes");
    let metrics = figcheck::suite_metrics(&cfg, &rows);
    let set = ExpectationSet::parse(SUITE_SET).expect("fixture parses");
    figcheck::evaluate(&set, &metrics, "test").to_canonical_json()
}

#[test]
fn suite_report_is_byte_deterministic_across_runs_and_resume() {
    let first = suite_report(&SweepOptions::none());
    let second = suite_report(&SweepOptions::none());
    assert_eq!(first, second, "two independent sweeps drifted");

    // Journal a third run, then replay it via `resume`: every cell comes
    // back from the journal (nothing is re-simulated) and the report
    // bytes must still match.
    let journal =
        std::env::temp_dir().join(format!("figcheck-journal-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&journal);
    let journaled = suite_report(&SweepOptions {
        journal: Some(journal.clone()),
        ..SweepOptions::none()
    });
    assert_eq!(first, journaled, "journaled sweep drifted");
    let resumed = suite_report(&SweepOptions {
        resume: Some(journal.clone()),
        ..SweepOptions::none()
    });
    assert_eq!(first, resumed, "resumed sweep drifted");
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn golden_report_thread_independent_and_matches_snapshot() {
    let set_text = std::fs::read_to_string(manifest_path("expectations/golden_smoke.json"))
        .expect("read expectations/golden_smoke.json");
    let set = ExpectationSet::parse(&set_text).expect("golden_smoke parses");

    let serial = figcheck::evaluate(&set, &figcheck::golden_metrics_with_jobs(1), "golden");
    let parallel = figcheck::evaluate(&set, &figcheck::golden_metrics_with_jobs(4), "golden");
    let json = serial.to_canonical_json();
    assert_eq!(
        json,
        parallel.to_canonical_json(),
        "golden report depends on sweep thread count"
    );

    let path = manifest_path("tests/golden/figcheck_golden.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &json).expect("write snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).expect(
        "missing tests/golden/figcheck_golden.json; run UPDATE_GOLDEN=1 cargo test --test figcheck_report",
    );
    if expected != json {
        let drift = expected
            .lines()
            .zip(json.lines())
            .enumerate()
            .find(|(_, (e, a))| e != a);
        match drift {
            Some((i, (e, a))) => panic!(
                "figcheck_golden.json drifted at line {}:\n  expected: {e}\n  actual:   {a}",
                i + 1
            ),
            None => panic!("figcheck_golden.json drifted (length changed)"),
        }
    }

    // The committed snapshot is also expected to be green: the golden
    // smoke expectations are calibrated to pass at golden volume, so a
    // shape regression fails the golden test too, not just CI's figcheck
    // job.
    assert!(
        !serial.gates(),
        "golden smoke expectations report a shape regression:\n{}",
        figcheck::scorecard(&serial)
    );
}
