//! Property tests pinning the figcheck scorer's contract: ordering
//! verdicts are invariant under uniform cycle scaling, band and crossover
//! edges are inclusive (and values one ULP outside are not), NaN never
//! passes, and evaluation is a pure deterministic function of its inputs.
//!
//! Thread-count independence of the full pipeline is covered by CI's
//! serial/parallel matrix: both legs byte-compare the golden figcheck
//! report (`tests/figcheck_report.rs`) against the same committed
//! snapshot, so a 1-thread and an N-thread sweep must serialize
//! identically.

use mcgpu_types::{Check, ExpectationSet, LlcOrgKind, Metric};
use proptest::prelude::*;

fn speedup(bench: &str, org: LlcOrgKind) -> Metric {
    Metric::Speedup {
        bench: bench.to_string(),
        org,
    }
}

/// The smallest positive step below `v` (assumes `v > 0`, finite).
fn next_down(v: f64) -> f64 {
    f64::from_bits(v.to_bits() - 1)
}

/// The smallest positive step above `v` (assumes `v > 0`, finite).
fn next_up(v: f64) -> f64 {
    f64::from_bits(v.to_bits() + 1)
}

proptest! {
    /// Speedups are cycle-count ratios. Scaling every cycle count by the
    /// same positive integer leaves each ratio — and therefore every
    /// ordering verdict — exactly unchanged: with all products below
    /// 2^53 the ratios are the same real number, and IEEE round-to-
    /// nearest maps equal reals to equal doubles.
    #[test]
    fn ordering_verdict_invariant_under_uniform_cycle_scaling(
        mem_cycles in 1u64..(1 << 26),
        sm_cycles in 1u64..(1 << 26),
        k in 1u64..(1 << 20),
        min_ratio_cents in 50u32..200,
    ) {
        let check = Check::Ordering {
            left: speedup("RN", LlcOrgKind::SmSide),
            right: speedup("RN", LlcOrgKind::MemorySide),
            min_ratio: f64::from(min_ratio_cents) / 100.0,
        };
        let plain = [
            mem_cycles as f64 / sm_cycles as f64,
            mem_cycles as f64 / mem_cycles as f64,
        ];
        let scaled = [
            (mem_cycles * k) as f64 / (sm_cycles * k) as f64,
            (mem_cycles * k) as f64 / (mem_cycles * k) as f64,
        ];
        prop_assert_eq!(check.apply(&plain), check.apply(&scaled));
    }

    /// Band edges are inclusive: the edge values themselves pass, and the
    /// adjacent representable doubles just outside fail.
    #[test]
    fn band_edges_are_inclusive_and_sharp(
        lo_millis in 1u64..1_000_000,
        width_millis in 0u64..1_000_000,
    ) {
        let lo = lo_millis as f64 / 1000.0;
        let hi = (lo_millis + width_millis) as f64 / 1000.0;
        let check = Check::Band {
            metric: speedup("RN", LlcOrgKind::SmSide),
            lo,
            hi,
        };
        prop_assert!(check.apply(&[lo]), "lo edge is inclusive");
        prop_assert!(check.apply(&[hi]), "hi edge is inclusive");
        prop_assert!(!check.apply(&[next_down(lo)]), "below lo fails");
        prop_assert!(!check.apply(&[next_up(hi)]), "above hi fails");
    }

    /// Crossover edges are inclusive on both samples, and a curve
    /// strictly on one side of the threshold never counts as crossing.
    #[test]
    fn crossover_edges_are_inclusive_and_sharp(thr_millis in 1u64..1_000_000) {
        let threshold = thr_millis as f64 / 1000.0;
        let check = Check::Crossover {
            below: Metric::WorkingSetMb {
                bench: "RN".to_string(),
                window: 1000,
            },
            above: Metric::WorkingSetMb {
                bench: "RN".to_string(),
                window: 100_000,
            },
            threshold,
        };
        prop_assert!(check.apply(&[threshold, threshold]), "both edges inclusive");
        prop_assert!(!check.apply(&[next_up(threshold), next_up(threshold)]));
        prop_assert!(!check.apply(&[next_down(threshold), next_down(threshold)]));
        prop_assert!(check.apply(&[next_down(threshold), next_up(threshold)]));
    }

    /// NaN fails every check kind, wherever it appears.
    #[test]
    fn nan_never_passes(v_millis in 1u64..1_000_000) {
        let v = v_millis as f64 / 1000.0;
        let band = Check::Band {
            metric: speedup("RN", LlcOrgKind::SmSide),
            lo: 0.0,
            hi: f64::INFINITY,
        };
        prop_assert!(!band.apply(&[f64::NAN]));
        let ordering = Check::Ordering {
            left: speedup("RN", LlcOrgKind::SmSide),
            right: speedup("RN", LlcOrgKind::MemorySide),
            min_ratio: 1.0,
        };
        prop_assert!(!ordering.apply(&[f64::NAN, v]));
        prop_assert!(!ordering.apply(&[v, f64::NAN]));
        let rel = Check::RelErr {
            metric: speedup("RN", LlcOrgKind::SmSide),
            reference: v,
            max_rel: 0.5,
        };
        prop_assert!(!rel.apply(&[f64::NAN]));
        let cross = Check::Crossover {
            below: speedup("RN", LlcOrgKind::SmSide),
            above: speedup("RN", LlcOrgKind::MemorySide),
            threshold: v,
        };
        prop_assert!(!cross.apply(&[f64::NAN, v]));
        prop_assert!(!cross.apply(&[v, f64::NAN]));
    }

    /// Evaluation is pure: the same expectation set scored against the
    /// same metric table any number of times yields byte-identical
    /// canonical reports and scorecards.
    #[test]
    fn evaluation_is_deterministic(
        sm in 1u64..1_000_000,
        lo_cents in 0u32..300,
        width_cents in 0u32..300,
    ) {
        let lo = f64::from(lo_cents) / 100.0;
        let hi = lo + f64::from(width_cents) / 100.0;
        let json = format!(
            r#"{{
              "schema": "mcgpu-expect-v1",
              "source": "proptest",
              "expectations": [
                {{
                  "id": "prop/RN/band",
                  "figure": "fig08",
                  "severity": "shape",
                  "check": {{
                    "kind": "band",
                    "value": {{"metric": "speedup", "bench": "RN", "org": "SM-side"}},
                    "lo": {lo:?},
                    "hi": {hi:?}
                  }},
                  "note": ""
                }}
              ]
            }}"#
        );
        let set = ExpectationSet::parse(&json).expect("generated set parses");
        let mut metrics = sac_bench::figcheck::Metrics::new();
        metrics.insert_speedup("RN", LlcOrgKind::SmSide, sm as f64 / 1000.0);
        let a = sac_bench::figcheck::evaluate(&set, &metrics, "quick");
        let b = sac_bench::figcheck::evaluate(&set, &metrics, "quick");
        prop_assert_eq!(a.to_canonical_json(), b.to_canonical_json());
        prop_assert_eq!(
            sac_bench::figcheck::scorecard(&a),
            sac_bench::figcheck::scorecard(&b)
        );
    }
}
