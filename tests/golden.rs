//! Golden-stats regression harness.
//!
//! Runs a small fixed suite of (benchmark, organization, machine-variant)
//! simulations through the parallel sweep runner, serializes each
//! [`mcgpu_sim::RunStats`] to canonical JSON, and compares it byte-for-byte
//! against the committed snapshot under `tests/golden/`. Any behavioural
//! drift in the simulator — intended or not — fails here first.
//!
//! The case definitions live in `sac_bench::golden`, shared with the
//! `golden_sweep` binary the CI kill/resume job drives, so a resumed
//! journaled sweep reproduces exactly the snapshots checked here.
//!
//! To regenerate the snapshots after an *intended* model change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```
//!
//! then commit the diff under `tests/golden/` together with the change
//! that caused it.

use mcgpu_trace::{generate, profiles, TraceParams};
use mcgpu_types::{LlcOrgKind, MachineConfig};
use sac_bench::golden::suite;
use sac_bench::{run_one, sweep};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

#[test]
fn golden_stats_match_committed_snapshots() {
    let cases = suite();
    let dir = golden_dir();
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();

    // The whole suite rides the same parallel runner the figure harnesses
    // use, so this test also exercises fan-out + input-order collection.
    let actual = sweep::map(cases, |c| (c.name, c.run()));

    let mut failures = Vec::new();
    for (name, json) in actual {
        let path = dir.join(format!("{name}.json"));
        if update {
            std::fs::create_dir_all(&dir).expect("create tests/golden");
            std::fs::write(&path, &json).expect("write snapshot");
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(expected) if expected == json => {}
            Ok(expected) => {
                let drift = expected
                    .lines()
                    .zip(json.lines())
                    .enumerate()
                    .find(|(_, (e, a))| e != a);
                failures.push(match drift {
                    Some((i, (e, a))) => {
                        format!("{name}: drift at line {}: expected `{e}`, got `{a}`", i + 1)
                    }
                    None => format!("{name}: snapshot length differs"),
                });
            }
            Err(_) => failures.push(format!(
                "{name}: missing snapshot {} (run UPDATE_GOLDEN=1 cargo test --test golden)",
                path.display()
            )),
        }
    }
    assert!(
        failures.is_empty(),
        "golden-stats drift:\n  {}\n\nIf the change is intended, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test golden and commit the snapshot diff.",
        failures.join("\n  ")
    );
}

/// The serializer itself must be injective enough for the harness: two
/// different stats never serialize identically (spot-checked on the fields
/// the simulator actually varies).
#[test]
fn canonical_json_distinguishes_runs() {
    let cfg = MachineConfig::experiment_baseline();
    let params = TraceParams {
        total_accesses: 5_000,
        ..TraceParams::quick()
    };
    let profile = profiles::by_name("SN").expect("profile");
    let wl = generate(&cfg, &profile, &params);
    let a = run_one(&cfg, &wl, LlcOrgKind::MemorySide).to_canonical_json();
    let b = run_one(&cfg, &wl, LlcOrgKind::SmSide).to_canonical_json();
    assert_ne!(a, b);
    // And the same run twice is byte-identical.
    let a2 = run_one(&cfg, &wl, LlcOrgKind::MemorySide).to_canonical_json();
    assert_eq!(a, a2);
}
