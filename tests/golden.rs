//! Golden-stats regression harness.
//!
//! Runs a small fixed suite of (benchmark, organization, machine-variant)
//! simulations through the parallel sweep runner, serializes each
//! [`mcgpu_sim::RunStats`] to canonical JSON, and compares it byte-for-byte
//! against the committed snapshot under `tests/golden/`. Any behavioural
//! drift in the simulator — intended or not — fails here first.
//!
//! To regenerate the snapshots after an *intended* model change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```
//!
//! then commit the diff under `tests/golden/` together with the change
//! that caused it.

use mcgpu_trace::{generate, profiles, TraceParams};
use mcgpu_types::{CoherenceKind, LlcOrgKind, MachineConfig};
use sac_bench::{run_one, sweep};
use std::path::PathBuf;

/// One golden case: a machine variant, a benchmark, and an organization.
struct Case {
    /// Snapshot file stem under `tests/golden/`.
    name: &'static str,
    bench: &'static str,
    org: LlcOrgKind,
    hardware_coherence: bool,
    sectored: bool,
}

const fn case(name: &'static str, bench: &'static str, org: LlcOrgKind) -> Case {
    Case {
        name,
        bench,
        org,
        hardware_coherence: false,
        sectored: false,
    }
}

/// The fixed suite. Kept small enough for every-PR CI (quick trace volume)
/// while covering each organization, both coherence schemes, and sectored
/// caches.
fn suite() -> Vec<Case> {
    vec![
        case("sn_memside", "SN", LlcOrgKind::MemorySide),
        case("sn_smside", "SN", LlcOrgKind::SmSide),
        case("sn_sac", "SN", LlcOrgKind::Sac),
        case("cfd_static", "CFD", LlcOrgKind::StaticHalf),
        case("cfd_dynamic", "CFD", LlcOrgKind::Dynamic),
        case("srad_sac", "SRAD", LlcOrgKind::Sac),
        Case {
            hardware_coherence: true,
            ..case("rn_smside_hwcoh", "RN", LlcOrgKind::SmSide)
        },
        Case {
            sectored: true,
            ..case("gemm_sac_sectored", "GEMM", LlcOrgKind::Sac)
        },
    ]
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn run_case(c: &Case) -> String {
    let mut cfg = MachineConfig::experiment_baseline();
    if c.hardware_coherence {
        cfg.coherence = CoherenceKind::Hardware;
    }
    if c.sectored {
        cfg.sectored = true;
    }
    let params = TraceParams {
        total_accesses: 15_000,
        ..TraceParams::quick()
    };
    let profile = profiles::by_name(c.bench).expect("known benchmark");
    let wl = generate(&cfg, &profile, &params);
    run_one(&cfg, &wl, c.org).to_canonical_json()
}

#[test]
fn golden_stats_match_committed_snapshots() {
    let cases = suite();
    let dir = golden_dir();
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();

    // The whole suite rides the same parallel runner the figure harnesses
    // use, so this test also exercises fan-out + input-order collection.
    let actual = sweep::map(cases.iter().collect(), |c| (c.name, run_case(c)));

    let mut failures = Vec::new();
    for (name, json) in actual {
        let path = dir.join(format!("{name}.json"));
        if update {
            std::fs::create_dir_all(&dir).expect("create tests/golden");
            std::fs::write(&path, &json).expect("write snapshot");
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(expected) if expected == json => {}
            Ok(expected) => {
                let drift = expected
                    .lines()
                    .zip(json.lines())
                    .enumerate()
                    .find(|(_, (e, a))| e != a);
                failures.push(match drift {
                    Some((i, (e, a))) => {
                        format!("{name}: drift at line {}: expected `{e}`, got `{a}`", i + 1)
                    }
                    None => format!("{name}: snapshot length differs"),
                });
            }
            Err(_) => failures.push(format!(
                "{name}: missing snapshot {} (run UPDATE_GOLDEN=1 cargo test --test golden)",
                path.display()
            )),
        }
    }
    assert!(
        failures.is_empty(),
        "golden-stats drift:\n  {}\n\nIf the change is intended, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test golden and commit the snapshot diff.",
        failures.join("\n  ")
    );
}

/// The serializer itself must be injective enough for the harness: two
/// different stats never serialize identically (spot-checked on the fields
/// the simulator actually varies).
#[test]
fn canonical_json_distinguishes_runs() {
    let cfg = MachineConfig::experiment_baseline();
    let params = TraceParams {
        total_accesses: 5_000,
        ..TraceParams::quick()
    };
    let profile = profiles::by_name("SN").expect("profile");
    let wl = generate(&cfg, &profile, &params);
    let a = run_one(&cfg, &wl, LlcOrgKind::MemorySide).to_canonical_json();
    let b = run_one(&cfg, &wl, LlcOrgKind::SmSide).to_canonical_json();
    assert_ne!(a, b);
    // And the same run twice is byte-identical.
    let a2 = run_one(&cfg, &wl, LlcOrgKind::MemorySide).to_canonical_json();
    assert_eq!(a, a2);
}
