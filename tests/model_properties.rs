//! Property-based tests for SAC's analytical components, checked against
//! reference implementations, plus the sweep runner's determinism
//! contract.

use mcgpu_types::{ChipId, LineAddr};
use proptest::prelude::*;
use sac::counters::lsu;
use sac::eab::{ArchBandwidth, EabInputs, EabModel};
use sac::{Crd, LlcMode};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The determinism contract of `sac_bench::sweep` (see DESIGN.md): the
    /// same sweep run on 1 thread and on N threads yields bit-identical
    /// `RunStats`, for any benchmark, seed, and organization subset. Each
    /// case runs a real (benchmark x organization) sweep twice — serial
    /// and 4-way parallel — and compares the full statistics structs.
    #[test]
    fn sweep_results_independent_of_thread_count(
        bench_idx in 0usize..16,
        seed in any::<u64>(),
    ) {
        use mcgpu_types::LlcOrgKind;

        let cfg = mcgpu_types::MachineConfig::experiment_baseline();
        let profile = &mcgpu_trace::profiles::all_profiles()[bench_idx];
        let params = mcgpu_trace::TraceParams {
            total_accesses: 6_000,
            seed,
            ..mcgpu_trace::TraceParams::quick()
        };
        let wl = mcgpu_trace::generate(&cfg, profile, &params);
        let orgs = vec![LlcOrgKind::MemorySide, LlcOrgKind::SmSide, LlcOrgKind::Sac];

        let serial = sac_bench::sweep::map_with_jobs(1, orgs.clone(), |org| {
            sac_bench::run_one(&cfg, &wl, org)
        });
        let parallel = sac_bench::sweep::map_with_jobs(4, orgs, |org| {
            sac_bench::run_one(&cfg, &wl, org)
        });
        prop_assert_eq!(&serial, &parallel);
        // Byte-identical canonical JSON too — the golden harness depends
        // on serialization being as deterministic as the stats.
        for (s, p) in serial.iter().zip(&parallel) {
            prop_assert_eq!(s.to_canonical_json(), p.to_canonical_json());
        }
    }
}

fn arch_strategy() -> impl Strategy<Value = ArchBandwidth> {
    (
        100.0f64..8192.0,
        8.0f64..1024.0,
        100.0f64..8192.0,
        32.0f64..2048.0,
    )
        .prop_map(|(b_intra, b_inter, b_llc, b_mem)| ArchBandwidth {
            b_intra,
            b_inter,
            b_llc,
            b_mem,
        })
}

fn inputs_strategy() -> impl Strategy<Value = EabInputs> {
    (
        0.0f64..=1.0,
        0.0f64..=1.0,
        0.0f64..=1.0,
        0.01f64..=1.0,
        0.01f64..=1.0,
    )
        .prop_map(|(r_local, hm, hs, lm, ls)| EabInputs {
            r_local,
            llc_hit_memory_side: hm,
            llc_hit_sm_side: hs,
            lsu_memory_side: lm,
            lsu_sm_side: ls,
        })
}

proptest! {
    /// The EAB never exceeds its structural bounds and is always finite and
    /// non-negative.
    #[test]
    fn eab_respects_structural_bounds(arch in arch_strategy(), inputs in inputs_strategy()) {
        let m = EabModel::new(arch);
        let mem = m.eab_memory_side(&inputs);
        let sm = m.eab_sm_side(&inputs);
        prop_assert!(mem.is_finite() && mem >= 0.0);
        prop_assert!(sm.is_finite() && sm >= 0.0);
        // Memory-side: local side bounded by B_intra, remote by B_inter.
        prop_assert!(mem <= arch.b_intra + arch.b_inter + 1e-9);
        // SM-side: both sides share the intra-chip NoC.
        prop_assert!(sm <= arch.b_intra + 1e-9);
    }

    /// Raising the predicted SM-side hit rate never lowers the SM-side EAB.
    #[test]
    fn eab_monotone_in_sm_hit_rate(
        arch in arch_strategy(),
        inputs in inputs_strategy(),
        delta in 0.0f64..=0.5,
    ) {
        let m = EabModel::new(arch);
        let lo = m.eab_sm_side(&inputs);
        let raised = EabInputs {
            llc_hit_sm_side: (inputs.llc_hit_sm_side + delta).min(1.0),
            ..inputs
        };
        let hi = m.eab_sm_side(&raised);
        prop_assert!(hi + 1e-9 >= lo, "hit ↑ but EAB {lo} -> {hi}");
    }

    /// The decision is exactly the θ-threshold comparison of the two EABs.
    #[test]
    fn decision_matches_eab_comparison(
        arch in arch_strategy(),
        inputs in inputs_strategy(),
        theta in 0.0f64..=0.5,
    ) {
        let m = EabModel::new(arch);
        let expected = if m.eab_sm_side(&inputs) > m.eab_memory_side(&inputs) * (1.0 + theta) {
            LlcMode::SmSide
        } else {
            LlcMode::MemorySide
        };
        prop_assert_eq!(m.decide(&inputs, theta), expected);
    }

    /// With no remote traffic the organizations are equivalent and θ keeps
    /// the memory-side default.
    #[test]
    fn all_local_never_reconfigures(arch in arch_strategy(), inputs in inputs_strategy()) {
        let m = EabModel::new(arch);
        let local = EabInputs { r_local: 1.0, llc_hit_sm_side: inputs.llc_hit_memory_side,
            lsu_sm_side: inputs.lsu_memory_side, ..inputs };
        prop_assert_eq!(m.decide(&local, 0.05), LlcMode::MemorySide);
    }

    /// LSU is always in [1/N, 1] when any requests exist.
    #[test]
    fn lsu_in_range(counts in proptest::collection::vec(0u64..10_000, 1..64)) {
        let v = lsu(&counts);
        let n = counts.len() as f64;
        prop_assert!(v <= 1.0 + 1e-12);
        if counts.iter().any(|&c| c > 0) {
            prop_assert!(v >= 1.0 / n - 1e-12);
        }
    }

    /// An unsampled-set-free CRD (sampling every set) must agree exactly
    /// with a reference per-line directory of the same geometry.
    #[test]
    fn crd_matches_reference_directory(
        accesses in proptest::collection::vec((0u64..64, 0u8..4), 1..400),
    ) {
        // 4 chips, 4 sets x 4 ways, sampling a 4-set LLC: everything is
        // sampled.
        let mut crd = Crd::new(4, 4, 4, 1, 4);
        let mut reference = ReferenceDirectory::new(4, 4);
        for &(line, chip) in &accesses {
            let got = crd.observe(LineAddr(line), None, ChipId(chip));
            let want = reference.observe(line, chip);
            prop_assert_eq!(got, Some(want), "line {} chip {}", line, chip);
        }
    }
}

/// A straightforward per-set LRU directory with per-chip presence bits —
/// the semantics the CRD hardware is meant to implement.
struct ReferenceDirectory {
    sets: Vec<Vec<(u64, u8, u64)>>, // (tag, presence, stamp)
    ways: usize,
    clock: u64,
    num_sets: usize,
}

impl ReferenceDirectory {
    fn new(sets: usize, ways: usize) -> Self {
        ReferenceDirectory {
            sets: vec![Vec::new(); sets],
            ways,
            clock: 0,
            num_sets: sets,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        // Mirror the CRD's mixing hash.
        let mut x = line;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        (x % self.num_sets as u64) as usize
    }

    fn observe(&mut self, line: u64, chip: u8) -> bool {
        self.clock += 1;
        let set_idx = self.set_of(line);
        let ways = self.ways;
        let clock = self.clock;
        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|e| e.0 == line) {
            let hit = entry.1 & (1 << chip) != 0;
            entry.1 |= 1 << chip;
            entry.2 = clock;
            return hit;
        }
        if set.len() == ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.2)
                .map(|(i, _)| i)
                .expect("non-empty");
            set.remove(lru);
        }
        set.push((line, 1 << chip, clock));
        false
    }
}
