//! Observability inertness: golden byte-identity with observability ON.
//!
//! The observability layer's contract is that it is strictly read-only —
//! enabling it must not perturb the simulation by a single cycle. This
//! suite proves that at the strongest level available: every golden case
//! re-runs with full observability (histograms + timeline + trace sink)
//! and its `RunStats::to_canonical_json` must be **byte-identical to the
//! committed pre-observability snapshot** under `tests/golden/`. There is
//! deliberately no `UPDATE_GOLDEN` path here: if this test fails, the
//! observer leaked into the simulation and the observer is what must be
//! fixed, never the snapshots.

use mcgpu_trace::{generate, profiles};
use mcgpu_types::{LlcOrgKind, ObsConfig};
use sac_bench::golden::{suite, Case};
use sac_bench::{run_one_observed, sweep};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Run a golden case with the given observability config, returning the
/// stats JSON and the report.
fn run_case_observed(c: &Case, obs: ObsConfig) -> (String, Option<mcgpu_sim::ObsReport>) {
    let cfg = c.config();
    let profile = profiles::by_name(c.bench).expect("known benchmark");
    let wl = generate(&cfg, &profile, &Case::params());
    let (stats, report) = run_one_observed(&cfg, &wl, c.org, obs);
    (stats.to_canonical_json(), report)
}

#[test]
fn observed_runs_match_committed_goldens_byte_for_byte() {
    let dir = golden_dir();
    // Full observability, with an epoch window small enough that the
    // timeline sampler actually fires many times mid-run.
    let obs = ObsConfig::trace().with_epoch_window(1000);
    let results = sweep::map(suite(), move |c| {
        let (json, report) = run_case_observed(&c, obs);
        (c.name, json, report)
    });
    for (name, json, report) in results {
        let path = dir.join(format!("{name}.json"));
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()));
        assert_eq!(
            json, expected,
            "{name}: RunStats changed under observability — the observer \
             fed back into the simulation"
        );
        let report = report.expect("observability was enabled");
        assert!(
            report.total_histogram().count() > 0,
            "{name}: observer recorded nothing"
        );
        assert!(
            report.trace_json.is_some(),
            "{name}: trace level produces a trace"
        );
        assert!(
            !report.timeline.is_empty(),
            "{name}: timeline has at least the trailing epoch"
        );
    }
}

#[test]
fn metrics_level_is_equally_inert() {
    // The cheaper level takes different code paths (no trace sink); pin it
    // on the two organizations with the most controller activity.
    let dir = golden_dir();
    for case in suite() {
        if !matches!(case.org, LlcOrgKind::Sac | LlcOrgKind::Dynamic) {
            continue;
        }
        let (json, report) = run_case_observed(&case, ObsConfig::metrics());
        let expected =
            std::fs::read_to_string(dir.join(format!("{}.json", case.name))).expect("snapshot");
        assert_eq!(
            json, expected,
            "{}: metrics level perturbed the run",
            case.name
        );
        let report = report.expect("observability was enabled");
        assert!(report.trace_json.is_none(), "metrics level has no trace");
    }
}

#[test]
fn observed_histograms_are_consistent_with_run_stats() {
    // The histograms count exactly the retired read responses: one
    // recording per responses_by_origin increment, split the same way.
    let case = suite().into_iter().find(|c| c.name == "sn_sac").unwrap();
    let cfg = case.config();
    let profile = profiles::by_name(case.bench).expect("known benchmark");
    let wl = generate(&cfg, &profile, &Case::params());
    let (stats, report) = run_one_observed(&cfg, &wl, case.org, ObsConfig::metrics());
    let report = report.expect("observability was enabled");
    for (i, origin) in mcgpu_types::ResponseOrigin::ALL.into_iter().enumerate() {
        assert_eq!(
            report.class_histogram(origin).count(),
            stats.responses_by_origin[i],
            "class {} count must equal the engine's response counter",
            origin.label()
        );
    }
    assert_eq!(
        report.total_histogram().count(),
        stats.responses_by_origin.iter().sum::<u64>()
    );
}
