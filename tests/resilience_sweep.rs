//! FaultPlan x sweep-runner interaction: resilience scenarios executed
//! through the parallel sweep runner must produce exactly the outcomes of
//! a serial execution — fault injection must not break the determinism
//! contract.

use mcgpu_trace::{generate, profiles, TraceParams};
use mcgpu_types::LlcOrgKind;
use sac_bench::resilience::{run_scenario, scenarios, Outcome};
use sac_bench::{run_one, sweep};

#[test]
fn fault_scenarios_match_serial_through_parallel_runner() {
    let cfg = mcgpu_types::MachineConfig::experiment_baseline();
    let profile = profiles::by_name("SN").expect("profile");
    let params = TraceParams {
        total_accesses: 25_000,
        ..TraceParams::quick()
    };
    let wl = generate(&cfg, &profile, &params);
    let expected_work = {
        let s = run_one(&cfg, &wl, LlcOrgKind::MemorySide);
        s.reads + s.writes
    };

    let scenarios = scenarios(&cfg);
    let jobs: Vec<(usize, LlcOrgKind)> = (0..scenarios.len())
        .flat_map(|si| LlcOrgKind::ALL.iter().map(move |&org| (si, org)))
        .collect();

    let serial: Vec<Outcome> = sweep::map_with_jobs(1, jobs.clone(), |(si, org)| {
        run_scenario(&cfg, &wl, org, &scenarios[si], expected_work)
    });
    let parallel: Vec<Outcome> = sweep::map_with_jobs(4, jobs, |(si, org)| {
        run_scenario(&cfg, &wl, org, &scenarios[si], expected_work)
    });

    assert_eq!(serial, parallel);

    // The healthy scenario (index 0) must complete with work conserved
    // under every organization — faults aside, the runner changes nothing.
    for (i, o) in serial.iter().take(LlcOrgKind::ALL.len()).enumerate() {
        match o {
            Outcome::Done { conserved, .. } => {
                assert!(
                    conserved,
                    "{}: healthy run lost work",
                    LlcOrgKind::ALL[i].label()
                )
            }
            Outcome::Failed(e) => panic!("{}: healthy run failed: {e}", LlcOrgKind::ALL[i].label()),
        }
    }
}
