//! In-process integration tests for the `sac_serve` sweep daemon:
//! submit → schedule → stream → fetch lifecycle, idempotent resubmission
//! and spec conflicts, queue backpressure, cross-request dedupe, budget
//! cancellation, and manifest + journal restart recovery. The scripted
//! chaos harness (`scripts/ci_serve_chaos.sh`) covers the `SIGKILL`
//! variants of the same guarantees against the real binaries.

use mcgpu_types::json::{escape_into, parse, JsonValue};
use mcgpu_types::LlcOrgKind;
use sac_bench::proto::{read_response, HttpResponse};
use sac_bench::serve::{Server, ServerConfig, SweepSpec};
use sac_bench::{Journal, JournalRecord, RecordOutcome};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sac-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> HttpResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    read_response(&mut std::io::BufReader::new(stream)).expect("parse response")
}

/// Poll a request's status until it reaches a terminal phase.
fn wait_terminal(addr: SocketAddr, id: &str) -> JsonValue {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = http(addr, "GET", &format!("/v1/sweeps/{id}"), "");
        assert_eq!(resp.status, 200, "{}", resp.text());
        let v = parse(&resp.text()).expect("status is JSON");
        let phase = v.get("phase").and_then(JsonValue::as_str).unwrap_or("");
        if phase == "completed" || phase == "failed" {
            return v;
        }
        assert!(Instant::now() < deadline, "request {id} never terminated");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn cell_stats(addr: SocketAddr, id: &str, index: usize) -> String {
    let resp = http(
        addr,
        "GET",
        &format!("/v1/sweeps/{id}/cells/{index}/stats"),
        "",
    );
    assert_eq!(resp.status, 200, "{}", resp.text());
    resp.text()
}

fn small_spec() -> SweepSpec {
    SweepSpec {
        benchmarks: vec!["SN".to_string()],
        orgs: vec![LlcOrgKind::Sac, LlcOrgKind::MemorySide],
        total_accesses: 2_000,
        max_cycles: None,
        watchdog_cycles: None,
        deadline_ms: None,
    }
}

fn submit_body(id: &str, spec: &SweepSpec) -> String {
    // Splice the client id into the canonical spec body.
    let canon = spec.canonical_json();
    format!("{{\"id\": \"{id}\", {}", &canon[1..])
}

#[test]
fn lifecycle_submit_poll_fetch_is_byte_identical_to_a_local_run() {
    let server = Server::start(ServerConfig {
        state_dir: tmp_dir("lifecycle"),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    let spec = small_spec();

    let resp = http(addr, "POST", "/v1/sweeps", &submit_body("life-1", &spec));
    assert_eq!(resp.status, 202, "{}", resp.text());
    let status = wait_terminal(addr, "life-1");
    assert_eq!(
        status.get("phase").and_then(JsonValue::as_str),
        Some("completed")
    );

    // The daemon's results are byte-identical to running the same cells
    // locally through the ordinary harness path.
    let cfg = spec.machine();
    let params = spec.params();
    let profile = mcgpu_trace::profiles::by_name("SN").expect("known benchmark");
    let wl = mcgpu_trace::generate(&cfg, &profile, &params);
    for (i, &org) in spec.orgs.iter().enumerate() {
        let expected = sac_bench::try_run_one(&cfg, &wl, org)
            .expect("local run completes")
            .to_canonical_json();
        assert_eq!(cell_stats(addr, "life-1", i), expected, "cell {i}");
    }

    // Idempotent resubmission: same id + same spec is a 200, not a rerun.
    let resp = http(addr, "POST", "/v1/sweeps", &submit_body("life-1", &spec));
    assert_eq!(resp.status, 200, "{}", resp.text());
    // Same id + different spec is a typed conflict.
    let other = SweepSpec {
        total_accesses: 2_001,
        ..small_spec()
    };
    let resp = http(addr, "POST", "/v1/sweeps", &submit_body("life-1", &other));
    assert_eq!(resp.status, 409);
    assert!(resp.text().contains("spec-conflict"), "{}", resp.text());
    // Unknown ids and invalid specs are typed errors, not hangs.
    assert_eq!(http(addr, "GET", "/v1/sweeps/nope", "").status, 404);
    let resp = http(
        addr,
        "POST",
        "/v1/sweeps",
        "{\"id\": \"bad\", \"benchmarks\": [\"SN\"], \"orgs\": [\"warp-drive\"]}",
    );
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("bad-request"), "{}", resp.text());

    server.stop();
}

#[test]
fn duplicate_requests_simulate_each_cell_once() {
    let dir = tmp_dir("dedupe");
    let server = Server::start(ServerConfig {
        state_dir: dir.clone(),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    let spec = small_spec();

    // Two tenants ask for the same grid (and a third after completion).
    assert_eq!(
        http(addr, "POST", "/v1/sweeps", &submit_body("dup-a", &spec)).status,
        202
    );
    assert_eq!(
        http(addr, "POST", "/v1/sweeps", &submit_body("dup-b", &spec)).status,
        202
    );
    wait_terminal(addr, "dup-a");
    wait_terminal(addr, "dup-b");
    assert_eq!(
        http(addr, "POST", "/v1/sweeps", &submit_body("dup-c", &spec)).status,
        202
    );
    let status_c = wait_terminal(addr, "dup-c");

    // All three serve byte-identical cells...
    for i in 0..spec.orgs.len() {
        let a = cell_stats(addr, "dup-a", i);
        assert_eq!(a, cell_stats(addr, "dup-b", i));
        assert_eq!(a, cell_stats(addr, "dup-c", i));
    }
    // ...the late request was a pure cache hit...
    let cells = status_c.get("cells").and_then(JsonValue::as_array).unwrap();
    for c in cells {
        assert_eq!(c.get("cached").and_then(JsonValue::as_bool), Some(true));
    }
    // ...and the journal holds exactly one record per unique cell.
    let journal = Journal::open(dir.join("journal.jsonl")).expect("journal opens");
    assert_eq!(journal.records().len(), spec.cells().len());

    server.stop();
}

#[test]
fn full_queue_refuses_with_429_and_retry_after() {
    let server = Server::start(ServerConfig {
        state_dir: tmp_dir("backpressure"),
        max_queue: 1,
        stall_ms: 1_000,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    // Distinct volumes make distinct cells, so dedupe cannot absorb them.
    let spec_n = |n: u64| SweepSpec {
        benchmarks: vec!["SN".to_string()],
        orgs: vec![LlcOrgKind::Sac],
        total_accesses: 1_000 + n,
        max_cycles: None,
        watchdog_cycles: None,
        deadline_ms: None,
    };

    // First request: wait until the scheduler has pulled it into a
    // (stalled) batch, leaving the queue empty but the pool busy.
    assert_eq!(
        http(addr, "POST", "/v1/sweeps", &submit_body("bp-0", &spec_n(0))).status,
        202
    );
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let v = parse(&http(addr, "GET", "/v1/healthz", "").text()).unwrap();
        if v.get("running").and_then(JsonValue::as_u64) == Some(1)
            && v.get("queued").and_then(JsonValue::as_u64) == Some(0)
        {
            break;
        }
        assert!(Instant::now() < deadline, "first request never started");
        std::thread::sleep(Duration::from_millis(20));
    }
    // Second request queues behind the running batch (cap reached)...
    assert_eq!(
        http(addr, "POST", "/v1/sweeps", &submit_body("bp-1", &spec_n(1))).status,
        202
    );
    // ...so the third is refused with explicit backpressure.
    let resp = http(addr, "POST", "/v1/sweeps", &submit_body("bp-2", &spec_n(2)));
    assert_eq!(resp.status, 429, "{}", resp.text());
    assert!(resp.text().contains("queue-full"), "{}", resp.text());
    assert_eq!(resp.header("retry-after"), Some("1"));

    // Backpressure is transient: the admitted requests still terminate.
    wait_terminal(addr, "bp-0");
    wait_terminal(addr, "bp-1");
    server.stop();
}

#[test]
fn cancel_and_deadline_quarantine_through_the_taxonomy() {
    let server = Server::start(ServerConfig {
        state_dir: tmp_dir("cancel"),
        stall_ms: 700,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    // Explicit cancel while the cell is stalled pre-execution.
    let spec = SweepSpec {
        benchmarks: vec!["SN".to_string()],
        orgs: vec![LlcOrgKind::Sac],
        total_accesses: 2_100,
        max_cycles: None,
        watchdog_cycles: None,
        deadline_ms: None,
    };
    assert_eq!(
        http(addr, "POST", "/v1/sweeps", &submit_body("can-1", &spec)).status,
        202
    );
    let resp = http(addr, "POST", "/v1/sweeps/can-1/cancel", "");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let status = wait_terminal(addr, "can-1");
    assert_eq!(
        status.get("phase").and_then(JsonValue::as_str),
        Some("failed")
    );
    let cell = &status.get("cells").and_then(JsonValue::as_array).unwrap()[0];
    assert_eq!(
        cell.get("phase").and_then(JsonValue::as_str),
        Some("quarantined")
    );
    assert_eq!(
        cell.get("kind").and_then(JsonValue::as_str),
        Some("cancelled")
    );

    // A wall-clock budget expires the same way, via the reaper.
    let spec = SweepSpec {
        deadline_ms: Some(1),
        total_accesses: 2_200,
        ..spec
    };
    assert_eq!(
        http(addr, "POST", "/v1/sweeps", &submit_body("can-2", &spec)).status,
        202
    );
    let status = wait_terminal(addr, "can-2");
    assert_eq!(
        status.get("phase").and_then(JsonValue::as_str),
        Some("failed")
    );
    let cell = &status.get("cells").and_then(JsonValue::as_array).unwrap()[0];
    assert_eq!(
        cell.get("kind").and_then(JsonValue::as_str),
        Some("cancelled")
    );

    // The event stream (chunked JSONL) records the whole lifecycle.
    let resp = http(addr, "GET", "/v1/sweeps/can-2/events", "");
    assert_eq!(resp.status, 200);
    let events = resp.text();
    assert!(events.contains("\"cancelled\": true"), "{events}");
    assert!(events.contains("\"quarantined\""), "{events}");
    assert!(events.contains("\"phase\": \"failed\""), "{events}");

    server.stop();
}

#[test]
fn restart_replays_completed_cells_and_reexecutes_the_rest() {
    let dir = tmp_dir("recovery");
    std::fs::create_dir_all(&dir).expect("state dir");
    let spec = small_spec();
    let cells = spec.cells();

    // Simulate a daemon that was killed mid-request: the manifest holds
    // the acknowledged request, the journal holds cell 0 only. The
    // sentinel payload cannot come from a fresh simulation, so byte
    // equality below proves replay rather than re-execution.
    let sentinel = "{\"sentinel\": \"journal-replay\"}\n";
    {
        let mut manifest = std::fs::File::create(dir.join("manifest.jsonl")).unwrap();
        let mut line = String::from("{\"op\": \"accepted\", \"id\": \"rec-1\", \"spec\": \"");
        escape_into(&spec.canonical_json(), &mut line);
        line.push_str("\"}");
        writeln!(manifest, "{line}").unwrap();

        let mut journal = Journal::create(dir.join("journal.jsonl")).unwrap();
        journal
            .append(JournalRecord {
                cell: cells[0].0.clone(),
                config_hash: cells[0].1,
                config: Some(cells[0].2.clone()),
                mode: None,
                attempts: 1,
                outcome: RecordOutcome::Completed {
                    stats_json: sentinel.to_string(),
                },
            })
            .unwrap();
    }

    let server = Server::start(ServerConfig {
        state_dir: dir.clone(),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    // The request is known immediately (no resubmission needed) and runs
    // to completion: cell 0 replayed byte-identically, cell 1 simulated.
    let status = wait_terminal(addr, "rec-1");
    assert_eq!(
        status.get("phase").and_then(JsonValue::as_str),
        Some("completed")
    );
    assert_eq!(cell_stats(addr, "rec-1", 0), sentinel);
    let cells_json = status.get("cells").and_then(JsonValue::as_array).unwrap();
    assert_eq!(
        cells_json[0].get("cached").and_then(JsonValue::as_bool),
        Some(true)
    );
    assert_eq!(
        cells_json[1].get("cached").and_then(JsonValue::as_bool),
        Some(false)
    );

    // Exactly one new journal record (cell 1); cell 0 was not re-run.
    let journal = Journal::open(dir.join("journal.jsonl")).unwrap();
    assert_eq!(journal.records().len(), 2);
    assert_eq!(journal.records()[0].payload(), Some(sentinel));

    server.stop();
}
