//! Chrome `trace_event` sink: schema validity and determinism.
//!
//! The trace must (a) parse as JSON and follow the `trace_event` object
//! format (`traceEvents` array; `M`/`X`/`i`/`C` phases with the fields
//! each phase requires), (b) be ordered: within one `(pid, tid)` track,
//! timestamps never decrease and complete spans nest strictly (no partial
//! overlap), and (c) be deterministic: timestamps are simulated cycles,
//! never wall-clock, so two identical runs serialize byte-identical traces
//! and observability reports.

use mcgpu_trace::{generate, profiles, TraceParams};
use mcgpu_types::json::{parse, JsonValue};
use mcgpu_types::{LlcOrgKind, ObsConfig};
use sac_bench::{experiment_config, run_one_observed};

/// One observed SAC run of a Table-4 benchmark, small but long enough to
/// cross several epochs and at least one reconfiguration.
fn observed_run() -> (String, String) {
    let cfg = experiment_config();
    let profile = profiles::by_name("BFS").expect("BFS profile");
    // quick volume: large enough for SAC to finish a profiling window and
    // record per-kernel decisions (the trace must carry decision instants).
    let wl = generate(&cfg, &profile, &TraceParams::quick());
    let obs = ObsConfig::trace().with_epoch_window(2000);
    let (_, report) = run_one_observed(&cfg, &wl, LlcOrgKind::Sac, obs);
    let report = report.expect("observability was enabled");
    let trace = report
        .trace_json
        .clone()
        .expect("trace level emits a trace");
    (trace, report.to_canonical_json())
}

fn events(doc: &JsonValue) -> &[JsonValue] {
    doc.get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array")
}

#[test]
fn trace_parses_and_follows_the_trace_event_schema() {
    let (trace, _) = observed_run();
    let doc = parse(&trace).expect("trace is valid JSON");
    let evs = events(&doc);
    assert!(!evs.is_empty(), "trace has events");

    let mut phases_seen = std::collections::BTreeSet::new();
    for e in evs {
        let ph = e.get("ph").and_then(JsonValue::as_str).expect("ph");
        phases_seen.insert(ph.to_string());
        assert!(e.get("pid").and_then(JsonValue::as_u64).is_some(), "pid");
        assert!(e.get("tid").and_then(JsonValue::as_u64).is_some(), "tid");
        assert!(e.get("name").and_then(JsonValue::as_str).is_some(), "name");
        match ph {
            // Metadata names processes/threads; no timestamp.
            "M" => {
                let name = e.get("name").and_then(JsonValue::as_str).unwrap();
                assert!(
                    name == "process_name" || name == "thread_name",
                    "metadata name {name}"
                );
                assert!(e.get("args").and_then(|a| a.get("name")).is_some());
            }
            // Complete spans carry ts + dur.
            "X" => {
                assert!(e.get("ts").and_then(JsonValue::as_u64).is_some());
                assert!(e.get("dur").and_then(JsonValue::as_u64).is_some());
            }
            // Instants carry ts and thread scope.
            "i" => {
                assert!(e.get("ts").and_then(JsonValue::as_u64).is_some());
                assert_eq!(e.get("s").and_then(JsonValue::as_str), Some("t"));
            }
            // Counters carry ts and a numeric series.
            "C" => {
                assert!(e.get("ts").and_then(JsonValue::as_u64).is_some());
                assert!(e.get("args").is_some());
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    for required in ["M", "X", "C"] {
        assert!(phases_seen.contains(required), "trace emits ph={required}");
    }
    // SAC on BFS reconfigures: the trace must carry decision instants.
    assert!(
        phases_seen.contains("i"),
        "SAC decisions appear as instants"
    );
}

#[test]
fn timestamps_are_ordered_and_spans_nest_per_track() {
    let (trace, _) = observed_run();
    let doc = parse(&trace).expect("trace is valid JSON");

    use std::collections::BTreeMap;
    let mut last_ts: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    // Open-span stack per track: (start, end) intervals.
    let mut stacks: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();

    for e in events(&doc) {
        let ph = e.get("ph").and_then(JsonValue::as_str).unwrap();
        if ph == "M" {
            continue;
        }
        let pid = e.get("pid").and_then(JsonValue::as_u64).unwrap();
        let tid = e.get("tid").and_then(JsonValue::as_u64).unwrap();
        let ts = e.get("ts").and_then(JsonValue::as_u64).unwrap();
        let track = (pid, tid);

        // Non-decreasing ts within the track, in serialized order.
        if let Some(&prev) = last_ts.get(&track) {
            assert!(prev <= ts, "track {track:?}: ts {ts} after {prev}");
        }
        last_ts.insert(track, ts);

        if ph == "X" {
            let dur = e.get("dur").and_then(JsonValue::as_u64).unwrap();
            let end = ts + dur;
            let stack = stacks.entry(track).or_default();
            // Close every span that ended before this one starts.
            while stack.last().is_some_and(|&(_, e0)| e0 <= ts) {
                stack.pop();
            }
            // What remains must strictly contain the new span.
            if let Some(&(s0, e0)) = stack.last() {
                assert!(
                    s0 <= ts && end <= e0,
                    "track {track:?}: span [{ts}, {end}] partially overlaps [{s0}, {e0}]"
                );
            }
            stack.push((ts, end));
        }
    }
}

#[test]
fn two_identical_runs_serialize_byte_identically() {
    let (trace_a, report_a) = observed_run();
    let (trace_b, report_b) = observed_run();
    assert_eq!(trace_a, trace_b, "trace must be wall-clock free");
    assert_eq!(report_a, report_b, "obs report must be wall-clock free");
}

#[test]
fn obs_report_json_is_closed_and_parseable() {
    let (_, report) = observed_run();
    let doc = parse(&report).expect("obs report is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("mcgpu-obs-v1")
    );
    let latency = doc.get("latency").and_then(JsonValue::as_array).unwrap();
    assert_eq!(latency.len(), 4, "one latency entry per chip");
    for chip in latency {
        let classes = chip.get("classes").and_then(JsonValue::as_array).unwrap();
        assert_eq!(classes.len(), 4, "one histogram per request class");
    }
    let timeline = doc.get("timeline").and_then(JsonValue::as_array).unwrap();
    assert!(!timeline.is_empty());
    // Epochs tile the run contiguously.
    let mut prev_end = 0;
    for (i, s) in timeline.iter().enumerate() {
        assert_eq!(s.get("epoch").and_then(JsonValue::as_u64), Some(i as u64));
        assert_eq!(
            s.get("start_cycle").and_then(JsonValue::as_u64),
            Some(prev_end)
        );
        prev_end = s.get("end_cycle").and_then(JsonValue::as_u64).unwrap();
        assert!(prev_end > 0);
    }
}
