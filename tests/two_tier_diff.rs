//! Differential proof of the two-tier engine's skip contract.
//!
//! Idle-cycle skipping (`--skip-idle`) is a speed knob, not a model change:
//! a skipping run must produce **byte-identical** canonical `RunStats` JSON
//! to the cycle-by-cycle run on every configuration — every organization,
//! coherence protocol, topology, chip count and fault plan — including runs
//! interrupted mid-cell, checkpointed and resumed, and runs that end in a
//! watchdog deadlock. This suite samples that space with proptest and pins
//! the committed golden snapshots on top.
//!
//! There is deliberately **no** `UPDATE_GOLDEN` path here: if skip-on
//! output drifts from skip-off output, the skip engine is wrong, and no
//! snapshot regeneration can make it right.

use mcgpu_sim::{SimBuilder, SimError, Simulator};
use mcgpu_trace::{generate, profiles, TraceParams, Workload};
use mcgpu_types::fault::{FaultEvent, FaultKind, FaultPlan};
use mcgpu_types::{ChipId, CoherenceKind, EngineMode, LlcOrgKind, MachineConfig, TopologyKind};
use proptest::prelude::*;
use std::path::PathBuf;

fn workload(cfg: &MachineConfig, bench: &str, accesses: usize) -> Workload {
    let params = TraceParams {
        total_accesses: accesses,
        ..TraceParams::quick()
    };
    generate(cfg, &profiles::by_name(bench).unwrap(), &params)
}

fn build(cfg: &MachineConfig, org: LlcOrgKind, plan: &FaultPlan, skip: bool) -> Simulator {
    SimBuilder::new(cfg.clone())
        .organization(org)
        .fault_plan(plan.clone())
        .skip_idle(skip)
        .build()
        .expect("valid machine configuration")
}

/// A degrading (never partitioning) plan the skip scan must step around:
/// one link loses half its lanes, then one DRAM channel dies.
fn degrading_plan(at: u64) -> FaultPlan {
    FaultPlan::new(vec![
        FaultEvent {
            cycle: at,
            kind: FaultKind::LinkDegrade {
                a: ChipId(0),
                b: ChipId(1),
                factor: 0.5,
            },
        },
        FaultEvent {
            cycle: at * 2,
            kind: FaultKind::DramFail {
                chip: ChipId(1),
                channel: 0,
            },
        },
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The core differential property: for a random cell — organization ×
    /// coherence × topology × chip count × fault plan × benchmark — the
    /// skipping engine's canonical JSON equals the stepping engine's, byte
    /// for byte.
    #[test]
    fn skip_on_matches_skip_off_across_the_config_space(
        org_idx in 0usize..LlcOrgKind::ALL.len(),
        bench_idx in 0usize..16,
        hw_coherence in any::<bool>(),
        topo_idx in 0usize..TopologyKind::ALL.len(),
        chips_pick in 0usize..3,
        with_faults in any::<bool>(),
    ) {
        let mut cfg = MachineConfig::experiment_baseline();
        cfg.coherence = if hw_coherence {
            CoherenceKind::Hardware
        } else {
            CoherenceKind::Software
        };
        cfg.topology = TopologyKind::ALL[topo_idx];
        cfg.chips = [2, 4, 8][chips_pick];
        // The vendored proptest has no prop_assume: silently pass on the
        // few invalid corners (e.g. a mesh that needs a square chip grid).
        if cfg.validate().is_err() {
            return;
        }
        let plan = if with_faults {
            degrading_plan(1_500)
        } else {
            FaultPlan::none()
        };
        if plan.validate(&cfg).is_err() {
            return;
        }

        let org = LlcOrgKind::ALL[org_idx];
        let bench = profiles::all_profiles()[bench_idx].name;
        let wl = workload(&cfg, bench, 8_000);

        let stepped = build(&cfg, org, &plan, false)
            .run(&wl)
            .expect("stepping run completes")
            .to_canonical_json();
        let mut sim = build(&cfg, org, &plan, true);
        let skipped = sim.run(&wl).expect("skipping run completes").to_canonical_json();
        prop_assert_eq!(&stepped, &skipped, "skip-idle changed the statistics");
    }

    /// Mid-run interruption composes with skipping: cut a skip-on run at an
    /// arbitrary cycle, snapshot it, restore into a fresh skip-on simulator
    /// and finish — still byte-identical to the uninterrupted skip-off run.
    #[test]
    fn skip_on_checkpoint_restore_stays_byte_identical(
        org_idx in 0usize..LlcOrgKind::ALL.len(),
        bench_idx in 0usize..16,
        cut in 500u64..3_000,
        with_faults in any::<bool>(),
    ) {
        let cfg = MachineConfig::experiment_baseline();
        let org = LlcOrgKind::ALL[org_idx];
        let bench = profiles::all_profiles()[bench_idx].name;
        let wl = workload(&cfg, bench, 8_000);
        let plan = if with_faults {
            degrading_plan(cut / 2)
        } else {
            FaultPlan::none()
        };

        let stepped = build(&cfg, org, &plan, false)
            .run(&wl)
            .expect("stepping run completes")
            .to_canonical_json();

        let mut victim = SimBuilder::new(cfg.clone())
            .organization(org)
            .fault_plan(plan.clone())
            .skip_idle(true)
            .max_cycles(cut)
            .build()
            .expect("valid machine configuration");
        let resumed_json = match victim.run(&wl) {
            // The run outlived the cut: snapshot the stopped machine and
            // finish in a freshly built skip-on simulator.
            Err(SimError::CycleLimit { .. }) => {
                let payload = victim.checkpoint(&wl);
                drop(victim);
                let mut resumed = build(&cfg, org, &plan, true);
                resumed.restore(&payload, &wl).expect("snapshot restores");
                prop_assert_eq!(resumed.cycle(), cut);
                resumed
                    .run(&wl)
                    .expect("resumed run completes")
                    .to_canonical_json()
            }
            // Finished before the cut; the full skip-on result still has
            // to match.
            Ok(stats) => stats.to_canonical_json(),
            Err(e) => panic!("unexpected abort at cut {cut}: {e}"),
        };
        prop_assert_eq!(&stepped, &resumed_json, "skip + checkpoint/restore drifted");
    }
}

/// The committed golden snapshots hold with skipping enabled — zero
/// regeneration. This is the acceptance gate: a skip-engine bug that
/// changes any of the eight fixed cases fails here against the bytes
/// already in the repository.
#[test]
fn golden_snapshots_byte_identical_with_skip_idle() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden");
    let mut failures = Vec::new();
    for case in sac_bench::golden::suite() {
        let cfg = case.config();
        let wl = generate(
            &cfg,
            &profiles::by_name(case.bench).unwrap(),
            &sac_bench::golden::Case::params(),
        );
        let json = sac_bench::try_run_cell(&cfg, &wl, case.org, EngineMode::Cycle, true)
            .expect("golden case completes")
            .to_canonical_json();
        let committed = std::fs::read_to_string(dir.join(format!("{}.json", case.name)))
            .expect("committed snapshot exists");
        if json != committed {
            failures.push(case.name);
        }
    }
    assert!(
        failures.is_empty(),
        "skip-idle drifted from the committed snapshots: {failures:?} \
         (fix the skip engine; do NOT regenerate the snapshots)"
    );
}

/// On a sparse phase the skip engine must actually skip — otherwise the
/// differential suite would be vacuously comparing two identical stepping
/// engines — and the statistics must still match exactly.
#[test]
fn sparse_phases_skip_nonzero_cycles_and_match() {
    let cfg = MachineConfig::experiment_baseline();
    // No Table 4 profile has a compute gap above 1 cycle, so build a
    // deliberately sparse variant: long compute bursts between memory
    // instructions leave the memory system idle for thousands of cycles.
    let mut profile = profiles::by_name("SN").unwrap();
    for k in &mut profile.kernels {
        k.compute_gap = 4_000;
    }
    let params = TraceParams {
        total_accesses: 2_000,
        ..TraceParams::quick()
    };
    let wl = generate(&cfg, &profile, &params);

    let stepped = build(&cfg, LlcOrgKind::Sac, &FaultPlan::none(), false)
        .run(&wl)
        .expect("stepping run completes")
        .to_canonical_json();
    let mut sim = build(&cfg, LlcOrgKind::Sac, &FaultPlan::none(), true);
    let skipped = sim.run(&wl).expect("skipping run completes");
    assert!(
        sim.skipped_cycles() > 0,
        "a sparse phase must engage the skip engine"
    );
    assert!(sim.skip_jumps() > 0);
    assert_eq!(
        stepped,
        skipped.to_canonical_json(),
        "sparse-phase skip changed the statistics"
    );
}

/// Watchdog regression: a genuinely wedged machine (two opposite ring
/// links failed, partitioning the fabric) must report `SimError::Deadlock`
/// at exactly the same cycle with skipping on — the skip scan folds the
/// watchdog deadline in, so it may never jump past it.
#[test]
fn deadlock_fires_at_the_same_cycle_with_skip_on() {
    let cfg = MachineConfig::experiment_baseline();
    let wl = workload(&cfg, "SN", 20_000);
    let partition = FaultPlan::new(vec![
        FaultEvent {
            cycle: 2_000,
            kind: FaultKind::LinkFail {
                a: ChipId(0),
                b: ChipId(1),
            },
        },
        FaultEvent {
            cycle: 2_000,
            kind: FaultKind::LinkFail {
                a: ChipId(2),
                b: ChipId(3),
            },
        },
    ]);
    let window = 25_000;
    let run = |skip: bool| {
        let err = SimBuilder::new(cfg.clone())
            .organization(LlcOrgKind::MemorySide)
            .fault_plan(partition.clone())
            .watchdog_window(window)
            .skip_idle(skip)
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .expect_err("a partitioned ring must deadlock");
        match err {
            SimError::Deadlock {
                cycle, window: w, ..
            } => {
                assert_eq!(w, window);
                cycle
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    };
    let stepped_cycle = run(false);
    let skipped_cycle = run(true);
    assert_eq!(
        stepped_cycle, skipped_cycle,
        "skip-idle moved the watchdog deadlock cycle"
    );
}
