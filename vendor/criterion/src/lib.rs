//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of criterion its benches use: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's bootstrapped statistics this runner times
//! `sample_size` batches with an auto-calibrated iteration count and
//! reports min / median / max time per iteration. Good enough to spot
//! order-of-magnitude regressions; not a substitute for the real crate.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one measured sample batch.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(50);

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Run `routine` repeatedly and record one timing sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

/// Calibrate how many iterations of `routine` fit in one sample batch.
fn calibrate<F: FnMut(&mut Bencher)>(routine: &mut F) -> u64 {
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters_per_sample: iters,
            samples: Vec::new(),
        };
        routine(&mut b);
        let elapsed = b.samples.first().copied().unwrap_or_default();
        if elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 30 {
            return iters;
        }
        // Grow towards the target; ×2 bound keeps calibration short.
        let scale =
            (TARGET_SAMPLE_TIME.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).clamp(1.1, 2.0);
        iters = ((iters as f64 * scale).ceil() as u64).max(iters + 1);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut routine: F) {
    let iters = calibrate(&mut routine);
    let mut b = Bencher {
        iters_per_sample: iters,
        samples: Vec::with_capacity(sample_size),
    };
    for _ in 0..sample_size {
        routine(&mut b);
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let fmt = |s: f64| {
        if s >= 1.0 {
            format!("{s:.3} s")
        } else if s >= 1e-3 {
            format!("{:.3} ms", s * 1e3)
        } else if s >= 1e-6 {
            format!("{:.3} µs", s * 1e6)
        } else {
            format!("{:.1} ns", s * 1e9)
        }
    };
    let (lo, mid, hi) = (
        per_iter[0],
        per_iter[per_iter.len() / 2],
        per_iter[per_iter.len() - 1],
    );
    println!(
        "{id:<40} time: [{} {} {}]  ({} samples × {} iters)",
        fmt(lo),
        fmt(mid),
        fmt(hi),
        per_iter.len(),
        iters
    );
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Time `routine` under `id` with the default sample count.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        run_bench(id, 30, routine);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 30,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timing samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Time `routine` under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        routine: F,
    ) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, id.into()),
            self.sample_size,
            routine,
        );
        self
    }

    /// End the group (upstream emits summaries here; this runner prints as
    /// it goes, so finish is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into one runner function, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("noop_increment", |b| b.iter(|| count += 1));
        assert!(count > 0, "routine should have been executed");
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function(String::from("x"), |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
