//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the part of proptest its tests actually use: the [`Strategy`]
//! trait with [`Strategy::prop_map`], range/tuple/[`Just`]/vector
//! strategies, [`prelude::any`], the [`prop_oneof!`] union combinator, and
//! the [`proptest!`] / `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case is reported with its generated
//!   inputs (every bound value is `Debug`-printed) but not minimized.
//! * **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name, so failures reproduce across runs; set
//!   `PROPTEST_RNG_SEED` to perturb the whole run.
//! * `ProptestConfig` only honours `cases` (default 256, like upstream).

pub mod strategy;

/// Runner configuration and RNG.
pub mod test_runner {
    pub use rand::rngs::SmallRng as TestRng;

    /// Subset of upstream's `ProptestConfig`: only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Seed for a property named `name`: FNV-1a of the name, mixed with
    /// `PROPTEST_RNG_SEED` when set (defaults to 0).
    pub fn seed_for(name: &str) -> u64 {
        let base: u64 = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec`s of `element` values with a length drawn from
    /// `size` (a `usize` range or a fixed `usize`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

/// The usual `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property; panics (no shrinking) with the condition text.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Union of same-valued strategies, chosen uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases of the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng: $crate::test_runner::TestRng = rand::SeedableRng::seed_from_u64(
                $crate::test_runner::seed_for(stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::gen_value(&$strat, &mut rng);)+
                let case_desc = format!(
                    concat!("case {}/{} of ", stringify!($name), ":" $(, "\n  ", stringify!($arg), " = {:?}")+),
                    case + 1, config.cases $(, &$arg)+
                );
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || $body));
                if let Err(payload) = result {
                    eprintln!("proptest: failing {case_desc}");
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0.25f64..=0.75, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y));
            let _ = b;
        }

        #[test]
        fn vec_lengths_respect_size_range(v in crate::collection::vec(0u64..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u64..4).prop_map(|x| x * 2),
            Just(99u64),
        ]) {
            prop_assert!(v == 99 || (v % 2 == 0 && v < 8));
        }
    }

    #[test]
    fn seeds_are_stable_per_name() {
        assert_eq!(
            crate::test_runner::seed_for("alpha"),
            crate::test_runner::seed_for("alpha")
        );
        assert_ne!(
            crate::test_runner::seed_for("alpha"),
            crate::test_runner::seed_for("beta")
        );
    }
}
