//! Value-generation strategies: the [`Strategy`] trait and the concrete
//! combinators the workspace's property tests use (ranges, tuples,
//! [`Just`], [`Union`], vectors, [`any`]).

use crate::test_runner::TestRng;
use rand::{Rng, RngCore};

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply draws a fresh value from the runner's RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: std::fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from every generated value and draw from
    /// it (no shrinking, like the rest of this runner).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: std::fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- integer and float ranges -------------------------------------------

/// Unbiased draw from `[0, span)` (`span > 0`) by rejection sampling.
fn below(rng: &mut TestRng, span: u128) -> u128 {
    debug_assert!(span > 0, "empty range handed to strategy sampler");
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range must be non-empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy range must be non-empty");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range must be non-empty");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "strategy range must be non-empty");
        // gen::<f64>() is [0, 1); scaling cannot quite reach `end`, which is
        // fine for the tolerance-based properties this runner serves.
        start + rng.gen::<f64>() * (end - start)
    }
}

// --- tuples --------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// --- any::<T>() ----------------------------------------------------------

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draw one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (`any::<u64>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

// --- boxing and unions ---------------------------------------------------

/// A type-erased strategy, so heterogeneous strategies with one value type
/// can live in a single [`Union`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (**self).gen_value(rng)
    }
}

/// Erase a strategy's concrete type (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Picks uniformly among alternative strategies each case.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: std::fmt::Debug> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "Union requires at least one strategy");
        Union { options }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].gen_value(rng)
    }
}

// --- collections ---------------------------------------------------------

/// Length specification for [`VecStrategy`] (`2..5`, `0..=8`, or a fixed
/// `usize`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Exclusive upper bound.
    pub max_exclusive: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "vec size range must be non-empty");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "vec size range must be non-empty");
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a random length.
pub struct VecStrategy<S: Strategy> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max_exclusive);
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn signed_inclusive_range_covers_endpoints() {
        let mut rng = TestRng::seed_from_u64(3);
        let strat = -3i32..=2;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let v = strat.gen_value(&mut rng);
            assert!((-3..=2).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 6, "all 6 values of -3..=2 should appear");
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = TestRng::seed_from_u64(11);
        let u = Union::new(vec![boxed(Just(1u64)), boxed(Just(2u64)), boxed(3u64..4)]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(u.gen_value(&mut rng));
        }
        assert_eq!(seen, [1u64, 2, 3].into_iter().collect());
    }
}
