//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small part of `rand` it actually uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`].
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction `rand`'s `SmallRng` uses on 64-bit targets — so it is
//! deterministic, fast, and statistically sound for simulation workloads.
//! Streams are NOT bit-compatible with the upstream crate; all consumers
//! in this workspace only require determinism for a fixed seed.

/// A random number generator core: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased sample in `[0, n)` by rejection (Lemire-style threshold).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty range in gen_range");
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return uniform_u64(rng, u64::MAX) as $t;
                }
                start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Small, fast RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (public-domain algorithm by Blackman & Vigna), seeded
    /// through SplitMix64 — deterministic and non-cryptographic, like
    /// upstream `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds_and_covers() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = r.gen_range(5u64..6);
            assert_eq!(v, 5);
        }
    }
}
