//! Offline drop-in subset of the `rayon` 1.x API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small part of `rayon` the sweep runner actually uses:
//! [`ThreadPoolBuilder`]/[`ThreadPool::install`], `vec.into_par_iter()
//! .map(f).collect::<Vec<_>>()` from the [`prelude`], and
//! [`current_num_threads`].
//!
//! The execution model is self-scheduling over an indexed job list: every
//! participating thread (the caller plus `num_threads - 1` helpers spawned
//! in a [`std::thread::scope`]) claims the next unclaimed index from a
//! shared atomic counter, runs the job, and writes the result into that
//! index's slot. This gives the same load-balancing behaviour as work
//! stealing for flat `map` workloads — a fast thread that finishes its job
//! immediately claims the next one — without unsafe code.
//!
//! Guarantees the workspace relies on:
//!
//! * **Deterministic output order.** Results are collected by input index,
//!   so `collect()` returns exactly what the serial `map` would, whatever
//!   the interleaving of threads.
//! * **Panic propagation.** A panicking job poisons the batch: the panic is
//!   re-raised on the calling thread once the scope joins.
//! * **`num_threads == 1` is fully serial** on the calling thread: no
//!   helper threads are spawned, so single-threaded runs are bit-equal to
//!   plain iterator code by construction.
//!
//! The global pool honours `RAYON_NUM_THREADS` like upstream; an explicit
//! [`ThreadPool`] entered via [`ThreadPool::install`] overrides it for the
//! duration of the closure, also like upstream.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Builds a [`ThreadPool`] with a configurable thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error building a thread pool (kept for API compatibility; the subset
/// cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Use exactly `num_threads` threads (0 = one per available CPU).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Build the pool.
    ///
    /// # Errors
    /// Never fails in this subset; the `Result` mirrors upstream.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A bounded pool of worker threads. Threads are scoped per parallel call
/// rather than persistent: the jobs this workspace fans out are whole
/// simulations (seconds each), so per-batch spawn cost is noise, and scoped
/// threads let jobs borrow from the caller's stack safely.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

thread_local! {
    /// Thread count installed by the innermost `ThreadPool::install`.
    static CURRENT_POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// One CPU's worth of default parallelism: `RAYON_NUM_THREADS` if set and
/// positive, otherwise the number of available CPUs.
fn default_num_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// The thread count parallel iterators execute with right now: the
/// installed pool's, or the global default.
pub fn current_num_threads() -> usize {
    let installed = CURRENT_POOL_THREADS.with(Cell::get);
    if installed > 0 {
        installed
    } else {
        default_num_threads()
    }
}

impl ThreadPool {
    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool as the current one: parallel iterators
    /// inside `op` execute on `self.num_threads` threads.
    pub fn install<R: Send>(&self, op: impl FnOnce() -> R + Send) -> R {
        let prev = CURRENT_POOL_THREADS.with(|c| c.replace(self.num_threads));
        let guard = RestoreThreads(prev);
        let result = op();
        drop(guard);
        result
    }
}

/// Restores the installed thread count even if `op` panics.
struct RestoreThreads(usize);

impl Drop for RestoreThreads {
    fn drop(&mut self) {
        CURRENT_POOL_THREADS.with(|c| c.set(self.0));
    }
}

/// Run `f` over every element of `items` on `threads` threads (the caller
/// plus `threads - 1` scoped helpers), collecting results in input order.
fn map_indexed<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let helpers = threads.saturating_sub(1).min(n.saturating_sub(1));
    if helpers == 0 {
        return items.into_iter().map(f).collect();
    }

    // Each index is claimed by exactly one thread, so the per-slot mutexes
    // are never contended; they only carry ownership across threads.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let work = |claim_from: &AtomicUsize| loop {
        let i = claim_from.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let item = slots[i]
            .lock()
            .expect("item slot never poisoned: claimed exactly once")
            .take()
            .expect("index claimed exactly once");
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))) {
            Ok(r) => {
                *results[i]
                    .lock()
                    .expect("result slot never poisoned: claimed exactly once") = Some(r);
            }
            Err(payload) => {
                // Keep the first panic's payload for the caller, stop
                // claiming new work, and let every thread wind down.
                let mut slot = panic_payload.lock().expect("payload lock");
                slot.get_or_insert(payload);
                claim_from.store(n, Ordering::Relaxed);
                break;
            }
        }
    };

    std::thread::scope(|scope| {
        for _ in 0..helpers {
            scope.spawn(|| work(&next));
        }
        work(&next);
    });

    if let Some(payload) = panic_payload
        .into_inner()
        .expect("payload lock never poisoned")
    {
        std::panic::resume_unwind(payload);
    }

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot never poisoned: batch completed")
                .expect("every index was claimed and completed")
        })
        .collect()
}

/// A panic captured from one job by [`map_catch`], reduced to its message.
///
/// The raw payload (`Box<dyn Any + Send>`) is deliberately not kept: it is
/// neither `Sync` nor cloneable, which would make any error type carrying
/// it awkward to store, compare, or serialize. Callers that need the text
/// of an arbitrary payload before it is dropped can use [`panic_message`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaughtPanic {
    message: String,
}

impl CaughtPanic {
    /// Capture a panic payload as a message-only record.
    pub fn from_payload(payload: Box<dyn std::any::Any + Send>) -> Self {
        CaughtPanic {
            message: panic_message(payload.as_ref()),
        }
    }

    /// The panic message (`"..."` from `panic!("...")`), or a placeholder
    /// for non-string payloads.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for CaughtPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for CaughtPanic {}

/// Best-effort text of a panic payload: `panic!` with a literal carries a
/// `&'static str`, `panic!` with formatting carries a `String`; anything
/// else (a custom `panic_any` value) gets a placeholder.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f` over every element of `items` on the current pool, catching each
/// job's panic *individually*: a panicking job yields `Err(CaughtPanic)` in
/// its own slot while every other job still runs to completion.
///
/// This is the isolation primitive for crash-safe sweeps. It contrasts with
/// the plain `map` pipeline, where one panic poisons the whole batch and is
/// re-raised on the caller. Output order is input order, as always.
pub fn map_catch<T, R, F>(items: Vec<T>, f: F) -> Vec<Result<R, CaughtPanic>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    // The inner catch fires before `map_indexed`'s batch-poisoning catch
    // ever sees a panic, so sibling jobs keep claiming work.
    map_indexed(items, current_num_threads(), move |item| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)))
            .map_err(CaughtPanic::from_payload)
    })
}

/// Parallel iterator types (subset: `Vec` source, `map`, `collect`).
pub mod iter {
    use super::{current_num_threads, map_indexed};

    /// Conversion into a parallel iterator.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// Iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Convert self into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// A data-parallel pipeline over an indexed collection.
    ///
    /// The subset keeps the source vector concrete: every pipeline is
    /// "vector, then a stack of maps", which is all the workspace needs.
    pub trait ParallelIterator: Sized {
        /// Element type.
        type Item: Send;

        /// Drive the pipeline and return all elements in input order.
        fn run(self) -> Vec<Self::Item>;

        /// Transform every element with `f`, in parallel.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync + Send,
        {
            Map { base: self, f }
        }

        /// Execute the pipeline and collect into `C` (input order).
        fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
            C::from_par_iter_vec(self.run())
        }
    }

    /// Collection types a parallel iterator can collect into.
    pub trait FromParallelIterator<T> {
        /// Build the collection from results already in input order.
        fn from_par_iter_vec(items: Vec<T>) -> Self;
    }

    impl<T> FromParallelIterator<T> for Vec<T> {
        fn from_par_iter_vec(items: Vec<T>) -> Self {
            items
        }
    }

    /// Parallel iterator over a `Vec`.
    #[derive(Debug)]
    pub struct IntoParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = IntoParIter<T>;

        fn into_par_iter(self) -> IntoParIter<T> {
            IntoParIter { items: self }
        }
    }

    impl<T: Send> ParallelIterator for IntoParIter<T> {
        type Item = T;

        fn run(self) -> Vec<T> {
            // An identity pipeline needs no threads.
            self.items
        }
    }

    /// `map` adaptor.
    #[derive(Debug)]
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, R, F> ParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        R: Send,
        F: Fn(B::Item) -> R + Sync + Send,
    {
        type Item = R;

        fn run(self) -> Vec<R> {
            map_indexed(self.base.run(), current_num_threads(), self.f)
        }
    }
}

/// The usual `use rayon::prelude::*;` surface.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_input_order() {
        let v: Vec<u64> = (0..1000).collect();
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let out: Vec<u64> = pool.install(|| v.into_par_iter().map(|x| x * 3).collect());
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_pool_runs_on_caller() {
        let caller = std::thread::current().id();
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let threads: Vec<std::thread::ThreadId> = pool.install(|| {
            vec![(), (), ()]
                .into_par_iter()
                .map(|()| std::thread::current().id())
                .collect()
        });
        assert!(threads.iter().all(|&t| t == caller));
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let n = 257;
        let out: Vec<usize> = pool.install(|| {
            (0..n)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|i| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    i
                })
                .collect()
        });
        assert_eq!(out.len(), n);
        assert_eq!(counter.load(Ordering::Relaxed), n);
    }

    #[test]
    fn install_nests_and_restores() {
        let outer = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 3);
            inner.install(|| assert_eq!(current_num_threads(), 7));
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn map_catch_isolates_panicking_jobs() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<Result<usize, CaughtPanic>> = pool.install(|| {
            map_catch((0..64).collect::<Vec<_>>(), |i| {
                if i % 13 == 5 {
                    panic!("cell {i} exploded");
                }
                i * 2
            })
        });
        std::panic::set_hook(hook);
        assert_eq!(out.len(), 64);
        for (i, r) in out.iter().enumerate() {
            if i % 13 == 5 {
                let err = r.as_ref().unwrap_err();
                assert_eq!(err.message(), format!("cell {i} exploded"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 2);
            }
        }
    }

    #[test]
    fn map_catch_is_serial_on_one_thread() {
        let caller = std::thread::current().id();
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out = pool.install(|| map_catch(vec![(), ()], |()| std::thread::current().id()));
        assert!(out.iter().all(|r| *r.as_ref().unwrap() == caller));
    }

    #[test]
    fn panic_message_downcasts_common_payloads() {
        let static_payload: Box<dyn std::any::Any + Send> = Box::new("literal");
        assert_eq!(panic_message(static_payload.as_ref()), "literal");
        let string_payload: Box<dyn std::any::Any + Send> = Box::new(String::from("formatted 7"));
        assert_eq!(panic_message(string_payload.as_ref()), "formatted 7");
        let other_payload: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(
            panic_message(other_payload.as_ref()),
            "non-string panic payload"
        );
    }

    #[test]
    #[should_panic(expected = "job failed")]
    fn panics_propagate_to_caller() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let _: Vec<()> = (0..16)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|i| {
                    if i == 11 {
                        panic!("job failed");
                    }
                })
                .collect();
        });
    }
}
